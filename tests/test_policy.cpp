// Policy test battery for the dispatch-policy family: name/config
// round-trips, the light-traffic differential oracle (empirical routing
// fractions of the REAL policy code against the Izagirre–Makowski-style
// closed forms in light_traffic_fractions, plus an end-to-end simulator
// run at low load), bitwise metamorphic collapses (a heterogeneity-aware
// policy with degenerate parameters must equal its uniform counterpart
// decision for decision), d = n probing against true JSQ, pinned-seed
// determinism and replication thread-count invariance, the availability
// contract under failures and drains, counter accounting, and the two
// simulator regressions this PR fixes (PreemptiveResume reading a stale
// idle slot during a special arrival; JSQ normalizing by installed
// instead of available blades).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "parallel/thread_pool.hpp"
#include "policy/policy.hpp"
#include "runtime/replay.hpp"
#include "sim/dispatcher.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/server_sim.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace {

using namespace blade;
using policy::DispatchPolicy;
using policy::PolicyConfig;
using policy::PolicyKind;
using policy::ServerState;
using policy::StateView;

StateView make_view(const std::vector<ServerState>& fleet) {
  return StateView{&fleet,
                   [](const void* ctx, std::size_t i) {
                     return (*static_cast<const std::vector<ServerState>*>(ctx))[i];
                   },
                   fleet.size()};
}

std::vector<ServerState> uniform_fleet(std::size_t n) {
  return std::vector<ServerState>(n, ServerState{1.0, 4, 4, 0});
}

PolicyConfig config_of(PolicyKind kind, unsigned d = 2, std::uint64_t seed = 42) {
  PolicyConfig cfg;
  cfg.kind = kind;
  cfg.probe_d = d;
  cfg.seed = seed;
  return cfg;
}

/// Routes `draws` arrivals against a FROZEN fleet state (queues pinned
/// at whatever `fleet` holds — all zero = the exact light-traffic limit)
/// and returns the empirical per-server assignment fractions.
std::vector<double> empirical_fractions(DispatchPolicy& p, const std::vector<ServerState>& fleet,
                                        int draws) {
  const StateView view = make_view(fleet);
  std::vector<double> f(fleet.size(), 0.0);
  for (int k = 0; k < draws; ++k) f[p.route(view)] += 1.0;
  for (double& x : f) x /= static_cast<double>(draws);
  return f;
}

/// Drives two policies through the same deterministically evolving queue
/// process, asserting the routed destinations agree BITWISE at every
/// step. The mutation makes queues build up, drain, and tie repeatedly,
/// so the comparison covers loaded and empty selection paths.
void assert_bitwise_collapse(DispatchPolicy& a, DispatchPolicy& b,
                             std::vector<ServerState> fleet, int steps) {
  const StateView view = make_view(fleet);
  for (int k = 0; k < steps; ++k) {
    const std::size_t da = a.route(view);
    const std::size_t db = b.route(view);
    ASSERT_EQ(da, db) << "policies diverged at arrival " << k;
    fleet[da].in_system += 1;
    if (k % 3 == 2) {
      // Depart from the longest queue, so ties keep re-forming.
      std::size_t longest = 0;
      for (std::size_t i = 1; i < fleet.size(); ++i) {
        if (fleet[i].in_system > fleet[longest].in_system) longest = i;
      }
      if (fleet[longest].in_system > 0) fleet[longest].in_system -= 1;
    }
    if (k % 17 == 16) {
      for (auto& s : fleet) s.in_system = 0;  // periodic idle period
    }
  }
}

// --- names and validation --------------------------------------------------

TEST(PolicyConfig, NameRoundTripsForEveryKind) {
  for (const PolicyKind kind : policy::all_policy_kinds()) {
    const auto parsed = policy::parse_policy_kind(policy::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed.value(), kind);
  }
  const auto bad = policy::parse_policy_kind("join-longest-queue");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, ErrorCode::InvalidArgument);
  // The error names the accepted spellings.
  EXPECT_NE(bad.error().context.find("opt-split"), std::string::npos);
}

TEST(PolicyConfig, ValidateRejectsBadConfigs) {
  EXPECT_FALSE(config_of(PolicyKind::JsqD).validate(0).ok());
  PolicyConfig zero_d = config_of(PolicyKind::JsqD, 0);
  EXPECT_FALSE(zero_d.validate(4).ok());

  PolicyConfig weighted = config_of(PolicyKind::WeightedJsqD);
  weighted.weights = {1.0, 2.0};  // fleet is 3 servers
  EXPECT_FALSE(weighted.validate(3).ok());
  weighted.weights = {1.0, 2.0, 1.0};
  EXPECT_TRUE(weighted.validate(3).ok());

  PolicyConfig sb = config_of(PolicyKind::SpeedBiasedD);
  EXPECT_FALSE(sb.validate(2).ok());  // speeds missing
  sb.speeds = {2.0, 1.0};
  EXPECT_TRUE(sb.validate(2).ok());

  EXPECT_THROW(DispatchPolicy(config_of(PolicyKind::OptSplit), 3), std::invalid_argument);
}

TEST(PolicyConfig, KindPredicates) {
  EXPECT_TRUE(policy::probes_queue_state(PolicyKind::Jsq));
  EXPECT_TRUE(policy::probes_queue_state(PolicyKind::HeteroJsqD));
  EXPECT_FALSE(policy::probes_queue_state(PolicyKind::OptSplit));
  EXPECT_TRUE(policy::needs_weights(PolicyKind::WeightedJsqD));
  EXPECT_FALSE(policy::needs_weights(PolicyKind::SpeedBiasedD));
}

// --- light-traffic oracle: closed forms ------------------------------------

TEST(LightTraffic, Jsq2ClosedFormIsTheOrderStatistic) {
  // Uniform probing, empty queues: pair (i, j) goes to min(i, j), so
  // f_i = 2 (n - 1 - i) / (n (n - 1)).
  const std::size_t n = 5;
  const auto f =
      policy::light_traffic_fractions(config_of(PolicyKind::JsqD), uniform_fleet(n));
  for (std::size_t i = 0; i < n; ++i) {
    const double expect = 2.0 * static_cast<double>(n - 1 - i) /
                          (static_cast<double>(n) * static_cast<double>(n - 1));
    EXPECT_NEAR(f[i], expect, 1e-12) << "server " << i;
  }
}

TEST(LightTraffic, HeteroJsq2PrefersFasterServerByCapacityKey) {
  // Speeds 4 > 2 > 1, uniform probing: every pair goes to the faster
  // member (key 1/(a s)). Ordered pairs are equiprobable (1/6), four of
  // six contain server 0.
  std::vector<ServerState> fleet = {{4.0, 1, 1, 0}, {2.0, 1, 1, 0}, {1.0, 1, 1, 0}};
  const auto f = policy::light_traffic_fractions(config_of(PolicyKind::HeteroJsqD), fleet);
  EXPECT_NEAR(f[0], 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(f[1], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(f[2], 0.0, 1e-12);
}

TEST(LightTraffic, SpeedBiased2MatchesWithoutReplacementAlgebra) {
  // p = (1/2, 1/4, 1/4) from speeds (2, 1, 1); empty queues tie to the
  // lower index, so f_0 = P(pair contains 0) = 5/6, f_1 = 1/6, f_2 = 0.
  PolicyConfig cfg = config_of(PolicyKind::SpeedBiasedD);
  cfg.speeds = {2.0, 1.0, 1.0};
  std::vector<ServerState> fleet = {{2.0, 1, 1, 0}, {1.0, 1, 1, 0}, {1.0, 1, 1, 0}};
  const auto f = policy::light_traffic_fractions(cfg, fleet);
  EXPECT_NEAR(f[0], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(f[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(f[2], 0.0, 1e-12);
}

TEST(LightTraffic, FractionsSumToOneForEveryKind) {
  std::vector<ServerState> fleet = {{2.0, 4, 4, 0}, {1.5, 2, 2, 0}, {1.0, 4, 4, 0}};
  for (const PolicyKind kind : policy::all_policy_kinds()) {
    PolicyConfig cfg = config_of(kind);
    if (policy::needs_weights(kind)) cfg.weights = {3.0, 1.0, 2.0};
    if (kind == PolicyKind::SpeedBiasedD) cfg.speeds = {2.0, 1.5, 1.0};
    const auto f = policy::light_traffic_fractions(cfg, fleet);
    double sum = 0.0;
    for (const double x : f) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9) << policy::to_string(kind);
  }
}

TEST(LightTraffic, RejectsUnsupportedProbeDepthAndDarkFleets) {
  EXPECT_THROW(
      policy::light_traffic_fractions(config_of(PolicyKind::JsqD, 3), uniform_fleet(5)),
      std::invalid_argument);
  std::vector<ServerState> fleet = uniform_fleet(3);
  fleet[1].available = 0;
  EXPECT_THROW(policy::light_traffic_fractions(config_of(PolicyKind::JsqD), fleet),
               std::invalid_argument);
}

// --- light-traffic oracle: the real policy code, differentially ------------

/// Empirical fractions from the live DispatchPolicy on a frozen empty
/// fleet must match the closed form within 3 binomial standard errors
/// (plus epsilon); 120k draws put one s.e. at ~0.0014.
void check_against_oracle(PolicyConfig cfg, const std::vector<ServerState>& fleet) {
  const int draws = 120000;
  DispatchPolicy p(cfg, fleet.size());
  const auto measured = empirical_fractions(p, fleet, draws);
  const auto oracle = policy::light_traffic_fractions(cfg, fleet);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const double se = std::sqrt(oracle[i] * (1.0 - oracle[i]) / draws);
    EXPECT_NEAR(measured[i], oracle[i], 3.0 * se + 1e-9)
        << policy::to_string(cfg.kind) << " server " << i;
  }
}

TEST(LightTraffic, EmpiricalJsq2MatchesOracle) {
  check_against_oracle(config_of(PolicyKind::JsqD), uniform_fleet(5));
}

TEST(LightTraffic, EmpiricalSpeedBiased2MatchesOracle) {
  PolicyConfig cfg = config_of(PolicyKind::SpeedBiasedD);
  cfg.speeds = {2.0, 1.0, 1.0};
  check_against_oracle(cfg, {{2.0, 1, 1, 0}, {1.0, 1, 1, 0}, {1.0, 1, 1, 0}});
}

TEST(LightTraffic, EmpiricalHeteroJsq2MatchesOracle) {
  check_against_oracle(config_of(PolicyKind::HeteroJsqD),
                       {{4.0, 1, 1, 0}, {2.0, 1, 1, 0}, {1.0, 1, 1, 0}});
}

TEST(LightTraffic, EmpiricalWeightedJsq2MatchesOracle) {
  PolicyConfig cfg = config_of(PolicyKind::WeightedJsqD);
  cfg.weights = {1.0, 2.0, 1.0};
  check_against_oracle(cfg, uniform_fleet(3));
}

TEST(LightTraffic, EmpiricalOptSplitMatchesWeights) {
  PolicyConfig cfg = config_of(PolicyKind::OptSplit);
  cfg.weights = {6.0, 3.0, 1.0};
  check_against_oracle(cfg, uniform_fleet(3));
}

/// End-to-end: the full simulator (Poisson arrivals, exponential service)
/// at ~0.3% utilization. The light-traffic closed form is the lambda -> 0
/// limit, so the measured fraction carries an O(rho) occupancy bias on
/// top of sampling noise (~0.08 at rho = 2.5%, ~0.01 here); the
/// tolerance is the replication CI half-width plus a documented 0.03
/// bias allowance.
TEST(LightTraffic, SimulatorJsq2FractionsNearOracle) {
  const model::Cluster cluster({{4, 1.0, 0.0}, {4, 1.0, 0.0}, {4, 1.0, 0.0}, {4, 1.0, 0.0}},
                               1.0);
  const auto oracle = policy::light_traffic_fractions(
      config_of(PolicyKind::JsqD), uniform_fleet(cluster.size()));
  const int reps = 6;
  std::vector<std::vector<double>> fractions(cluster.size());
  for (int k = 0; k < reps; ++k) {
    PolicyConfig cfg = config_of(PolicyKind::JsqD, 2, 100 + static_cast<std::uint64_t>(k));
    sim::PolicyDispatcher dispatcher(cfg, cluster.size());
    sim::SimConfig scfg;
    scfg.horizon = 60000.0;
    scfg.warmup = 0.0;
    scfg.seed = 100 + static_cast<std::uint64_t>(k);
    (void)sim::simulate_dispatched(cluster, 0.05, dispatcher, sim::SchedulingMode::Fcfs, scfg);
    std::uint64_t total = 0;
    for (const auto c : dispatcher.routed_by_server()) total += c;
    ASSERT_GT(total, 1000u);
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      fractions[i].push_back(static_cast<double>(dispatcher.routed_by_server()[i]) /
                             static_cast<double>(total));
    }
  }
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto ci = util::t_confidence_interval(fractions[i], 0.95);
    EXPECT_NEAR(ci.mean, oracle[i], ci.half_width + 0.03) << "server " << i;
  }
}

// --- bitwise metamorphic collapses -----------------------------------------

TEST(Metamorphic, SpeedBiasedCollapsesToJsqDWhenSpeedsEqual) {
  PolicyConfig sb = config_of(PolicyKind::SpeedBiasedD);
  sb.speeds = {1.5, 1.5, 1.5, 1.5};
  DispatchPolicy a(sb, 4);
  DispatchPolicy b(config_of(PolicyKind::JsqD), 4);
  assert_bitwise_collapse(a, b, std::vector<ServerState>(4, {1.5, 2, 2, 0}), 5000);
}

TEST(Metamorphic, WeightedCollapsesToHeteroWhenWeightsUniform) {
  PolicyConfig w = config_of(PolicyKind::WeightedJsqD);
  w.weights = {2.0, 2.0, 2.0, 2.0, 2.0};
  DispatchPolicy a(w, 5);
  DispatchPolicy b(config_of(PolicyKind::HeteroJsqD), 5);
  // Heterogeneous fleet: the collapse is about the PROBE distribution,
  // the comparison key stays the hetero one in both.
  std::vector<ServerState> fleet = {
      {4.0, 4, 4, 0}, {2.0, 2, 2, 0}, {1.0, 4, 4, 0}, {1.0, 2, 2, 0}, {0.5, 1, 1, 0}};
  assert_bitwise_collapse(a, b, fleet, 5000);
}

TEST(Metamorphic, HeteroCollapsesToJsqDOnHomogeneousFleet) {
  DispatchPolicy a(config_of(PolicyKind::HeteroJsqD), 4);
  DispatchPolicy b(config_of(PolicyKind::JsqD), 4);
  // Same speed AND same blade count everywhere: (q + 1) / (a s) orders
  // and ties exactly like raw q.
  assert_bitwise_collapse(a, b, std::vector<ServerState>(4, {2.0, 4, 4, 0}), 5000);
}

TEST(Metamorphic, OptSplitCollapsesToRandomWhenWeightsUniform) {
  PolicyConfig o = config_of(PolicyKind::OptSplit);
  o.weights = {3.0, 3.0, 3.0};
  DispatchPolicy a(o, 3);
  DispatchPolicy b(config_of(PolicyKind::Random), 3);
  assert_bitwise_collapse(a, b, uniform_fleet(3), 5000);
}

TEST(Metamorphic, ProbeAllEqualsTrueJsq) {
  // d = n probes every server (rejection + deterministic fill), and the
  // lexicographic (queue, index) minimum is probe-order free, so JSQ(n)
  // must pick exactly what the full scan picks at every arrival.
  const std::size_t n = 6;
  DispatchPolicy probed(config_of(PolicyKind::JsqD, static_cast<unsigned>(n)), n);
  DispatchPolicy scan(config_of(PolicyKind::Jsq), n);
  std::vector<ServerState> fleet(n, ServerState{1.0, 2, 2, 0});
  assert_bitwise_collapse(probed, scan, fleet, 4000);
  // And with d > n, the effective probe depth clamps to n.
  DispatchPolicy over(config_of(PolicyKind::JsqD, 99), n);
  DispatchPolicy scan2(config_of(PolicyKind::Jsq), n);
  assert_bitwise_collapse(over, scan2, fleet, 1000);
}

// --- determinism ------------------------------------------------------------

TEST(Determinism, PinnedSeedReproducesTheRoutedSequence) {
  std::vector<ServerState> fleet = uniform_fleet(4);
  const StateView view = make_view(fleet);
  PolicyConfig cfg = config_of(PolicyKind::JsqD);
  cfg.stream = 3;
  DispatchPolicy a(cfg, 4);
  DispatchPolicy b(cfg, 4);
  std::vector<std::size_t> seq_a, seq_b;
  for (int k = 0; k < 2000; ++k) {
    seq_a.push_back(a.route(view));
    seq_b.push_back(b.route(view));
  }
  EXPECT_EQ(seq_a, seq_b);

  // A different stream id over the same seed decorrelates the draws.
  PolicyConfig other = cfg;
  other.stream = 4;
  DispatchPolicy c(other, 4);
  int diff = 0;
  for (int k = 0; k < 2000; ++k) {
    if (c.route(view) != seq_a[static_cast<std::size_t>(k)]) ++diff;
  }
  EXPECT_GT(diff, 100);
}

TEST(Determinism, ReplicateIsThreadCountInvariant) {
  const model::Cluster cluster({{4, 2.0, 0.5}, {4, 1.0, 0.5}, {2, 1.0, 0.2}}, 1.0);
  auto one_run = [&](const sim::SimConfig& c) {
    PolicyConfig cfg = config_of(PolicyKind::HeteroJsqD, 2, c.seed);
    sim::PolicyDispatcher dispatcher(cfg, cluster.size());
    return sim::simulate_dispatched(cluster, 3.0, dispatcher, sim::SchedulingMode::Fcfs, c);
  };
  sim::SimConfig base;
  base.horizon = 4000.0;
  base.warmup = 400.0;
  base.seed = 11;
  par::ThreadPool one(1);
  par::ThreadPool three(3);
  const auto r1 = sim::replicate(one_run, base, 4, 0.95, &one);
  const auto r3 = sim::replicate(one_run, base, 4, 0.95, &three);
  ASSERT_EQ(r1.runs.size(), r3.runs.size());
  for (std::size_t k = 0; k < r1.runs.size(); ++k) {
    // Bitwise: each replication is a pure function of its seed, never of
    // the worker that happened to run it.
    EXPECT_EQ(r1.runs[k].generic_mean_response, r3.runs[k].generic_mean_response);
    EXPECT_EQ(r1.runs[k].generic_samples, r3.runs[k].generic_samples);
  }
}

// --- availability contract --------------------------------------------------

TEST(Availability, NeverRoutesToDarkServerWhileAlternativesExist) {
  std::vector<ServerState> fleet = uniform_fleet(5);
  fleet[0].available = 0;
  fleet[3].available = 0;
  const StateView view = make_view(fleet);
  for (const PolicyKind kind : policy::all_policy_kinds()) {
    PolicyConfig cfg = config_of(kind);
    if (policy::needs_weights(kind)) cfg.weights = {1.0, 1.0, 1.0, 1.0, 1.0};
    if (kind == PolicyKind::SpeedBiasedD) cfg.speeds = {1.0, 1.0, 1.0, 1.0, 1.0};
    DispatchPolicy p(cfg, 5);
    for (int k = 0; k < 3000; ++k) {
      const std::size_t dest = p.route(view);
      ASSERT_NE(dest, 0u) << policy::to_string(kind);
      ASSERT_NE(dest, 3u) << policy::to_string(kind);
    }
  }
}

TEST(Availability, FullOutageParksOnLeastLoadedProbed) {
  std::vector<ServerState> fleet = {{1.0, 2, 0, 3}, {1.0, 2, 0, 1}, {1.0, 2, 0, 2}};
  const StateView view = make_view(fleet);
  // Full scan kinds see the global minimum; probing with d = n too.
  DispatchPolicy scan(config_of(PolicyKind::Jsq), 3);
  EXPECT_EQ(scan.route(view), 1u);
  DispatchPolicy probed(config_of(PolicyKind::JsqD, 3), 3);
  EXPECT_EQ(probed.route(view), 1u);
  EXPECT_GE(probed.counters().fallback_scans, 1u);
  // Sampled kinds return SOME valid index (the task queues for recovery).
  DispatchPolicy rnd(config_of(PolicyKind::Random), 3);
  const std::size_t dest = rnd.route(view);
  EXPECT_LT(dest, 3u);
  EXPECT_GE(rnd.counters().fallback_scans, 1u);
}

TEST(Availability, HeteroKeyDiscountsDrainedCapacity) {
  // Equal speeds and queues, but server 0 is drained to one blade:
  // (q + 1)/(a s) ranks server 1 strictly better, so with d = n = 2
  // every arrival goes there.
  std::vector<ServerState> fleet = {{1.0, 4, 1, 2}, {1.0, 4, 4, 2}};
  const StateView view = make_view(fleet);
  DispatchPolicy p(config_of(PolicyKind::HeteroJsqD), 2);
  for (int k = 0; k < 500; ++k) ASSERT_EQ(p.route(view), 1u);
  // Naive JSQ(d) cannot tell them apart: the tie goes to index 0.
  DispatchPolicy naive(config_of(PolicyKind::JsqD), 2);
  for (int k = 0; k < 500; ++k) ASSERT_EQ(naive.route(view), 0u);
}

// --- counters ---------------------------------------------------------------

TEST(Counters, ProbeAndHerdAccounting) {
  std::vector<ServerState> fleet(4, ServerState{1.0, 2, 2, 1});  // everyone busy
  const StateView view = make_view(fleet);
  DispatchPolicy p(config_of(PolicyKind::JsqD), 4);
  const int arrivals = 250;
  for (int k = 0; k < arrivals; ++k) (void)p.route(view);
  const auto& c = p.counters();
  EXPECT_EQ(c.routed, static_cast<std::uint64_t>(arrivals));
  // Exactly d distinct probes per arrival, no more (the fuzz corpus
  // asserts the same bound per-arrival under churn).
  EXPECT_EQ(c.probes, static_cast<std::uint64_t>(2 * arrivals));
  // All queues equal: every selection compares equal once -> one tie per
  // arrival; every available probe is busy -> one herd event per arrival.
  EXPECT_EQ(c.ties, static_cast<std::uint64_t>(arrivals));
  EXPECT_EQ(c.herd_events, static_cast<std::uint64_t>(arrivals));
  EXPECT_EQ(c.fallback_scans, 0u);
}

TEST(Counters, RedrawsCountDuplicateRejections) {
  // n = 2, d = 2: the second distinct probe needs one extra draw per
  // duplicate; over many arrivals redraws must be strictly positive and
  // probes still exactly 2 per arrival.
  std::vector<ServerState> fleet = uniform_fleet(2);
  const StateView view = make_view(fleet);
  DispatchPolicy p(config_of(PolicyKind::JsqD), 2);
  for (int k = 0; k < 1000; ++k) (void)p.route(view);
  EXPECT_EQ(p.counters().probes, 2000u);
  EXPECT_GT(p.counters().redraws, 0u);
}

// --- simulator regressions fixed in this PR ---------------------------------

TEST(SimRegression, PreemptionIgnoresStaleIdleSlots) {
  // A drained PreemptiveResume server whose idle slot still holds the
  // residue of a COMPLETED generic task: the special arrival's victim
  // scan used to pick that stale slot (cancel an already-fired event,
  // compute negative remaining work, underflow the busy count, and blow
  // up on a negative schedule delay). Busy-only scanning + slot
  // scrubbing keep the arrival a plain enqueue.
  sim::Engine engine;
  sim::ResponseTimeCollector collector;
  sim::ServerSim server(engine, 2, 1.0, sim::SchedulingMode::PreemptiveResume, collector);

  engine.schedule_at(0.5, [&] {
    server.arrive({sim::TaskClass::Special, 0.0, 100.0});  // slot 0, runs long
  });
  engine.schedule_at(1.0, [&] {
    server.arrive({sim::TaskClass::Generic, 0.0, 1.0});  // slot 1, done at t=2
  });
  engine.schedule_at(5.0, [&] { server.set_available_blades(1); });
  engine.schedule_at(6.0, [&] {
    server.arrive({sim::TaskClass::Special, 0.0, 1.0});  // must enqueue, not preempt
  });
  ASSERT_NO_THROW(engine.run_until(300.0));
  EXPECT_EQ(server.preemptions(), 0u);
  EXPECT_EQ(server.completions(), 3u);
  EXPECT_EQ(server.tasks_in_system(), 0u);
}

TEST(SimRegression, PreemptionStillEvictsRunningGenerics) {
  // Sanity: the busy-slot filter must not disable REAL preemption.
  sim::Engine engine;
  sim::ResponseTimeCollector collector;
  sim::ServerSim server(engine, 1, 1.0, sim::SchedulingMode::PreemptiveResume, collector);
  engine.schedule_at(1.0, [&] {
    server.arrive({sim::TaskClass::Generic, 0.0, 10.0});
  });
  engine.schedule_at(2.0, [&] {
    server.arrive({sim::TaskClass::Special, 0.0, 1.0});
  });
  engine.run_until(100.0);
  EXPECT_EQ(server.preemptions(), 1u);
  EXPECT_EQ(server.completions(), 2u);
}

TEST(SimRegression, JsqSkipsFullyFailedServersAndUsesLiveCapacity) {
  sim::Engine engine;
  sim::ResponseTimeCollector collector;
  sim::ServerSim s0(engine, 4, 1.0, sim::SchedulingMode::Fcfs, collector);
  sim::ServerSim s1(engine, 4, 1.0, sim::SchedulingMode::Fcfs, collector);
  std::vector<sim::ServerSim*> servers = {&s0, &s1};
  sim::JoinShortestQueueDispatcher jsq;

  // Fully failed server 0 must never win, however empty it looks.
  s0.set_available_blades(0);
  s1.arrive({sim::TaskClass::Generic, 0.0, 50.0});
  EXPECT_EQ(jsq.route(servers), 1u);

  // Load must normalize by AVAILABLE blades: 1 task on a 1-available
  // server (live load 1.0) vs 2 tasks on a 4-available one (0.5). The
  // installed-blades normalization would have picked server 0.
  s0.set_available_blades(1);
  s0.arrive({sim::TaskClass::Generic, 0.0, 50.0});
  s1.arrive({sim::TaskClass::Generic, 0.0, 50.0});
  EXPECT_EQ(jsq.route(servers), 1u);
}

// --- replay harness ---------------------------------------------------------

runtime::ReplayTrace steady_trace(double horizon, double rate, std::uint64_t seed) {
  runtime::ReplayTrace trace;
  trace.horizon = horizon;
  trace.seed = seed;
  trace.events.push_back({.time = 0.0, .kind = runtime::ReplayEvent::Kind::Rate, .rate = rate});
  return trace;
}

TEST(ReplayPolicy, OptSplitRealizesItsWeights) {
  const model::Cluster cluster({{4, 2.0, 0.4}, {4, 1.0, 0.4}}, 1.0);
  PolicyConfig cfg = config_of(PolicyKind::OptSplit);
  cfg.weights = {0.7, 0.3};
  const auto trace = steady_trace(6000.0, 2.0, 5);
  const auto res = runtime::replay_policy(cluster, cfg, trace);
  ASSERT_EQ(res.measured_fractions.size(), 2u);
  EXPECT_NEAR(res.measured_fractions[0], 0.7, 0.05);
  EXPECT_NEAR(res.measured_fractions[1], 0.3, 0.05);
  std::uint64_t total = 0;
  for (const auto c : res.routed_by_server) total += c;
  EXPECT_EQ(total, res.counters.routed);
  EXPECT_GT(res.sim.generic_samples, 0u);
  EXPECT_GT(res.sim.special_samples, 0u);
}

TEST(ReplayPolicy, SurvivesChurnAndKeepsServing) {
  const model::Cluster cluster({{4, 2.0, 0.5}, {4, 1.0, 0.5}, {2, 1.0, 0.2}}, 1.0);
  auto trace = steady_trace(3000.0, 3.0, 5);
  trace.events.push_back(
      {.time = 1000.0, .kind = runtime::ReplayEvent::Kind::Fail, .server = 0});
  trace.events.push_back(
      {.time = 2000.0, .kind = runtime::ReplayEvent::Kind::Recover, .server = 0});
  for (const PolicyKind kind :
       {PolicyKind::JsqD, PolicyKind::HeteroJsqD, PolicyKind::RoundRobin}) {
    const auto res = runtime::replay_policy(cluster, config_of(kind), trace);
    EXPECT_GT(res.sim.generic_samples, 1000u) << policy::to_string(kind);
    EXPECT_EQ(res.counters.routed,
              res.routed_by_server[0] + res.routed_by_server[1] + res.routed_by_server[2]);
  }
}

// --- the regime claims the bench matrix makes --------------------------------

TEST(Regimes, Jsq2BeatsOptSplitOnHomogeneousHeavyLoad) {
  // Homogeneous fleet at 90% load: queue feedback beats ANY static
  // split, including the optimizer's (which is uniform here).
  const model::Cluster cluster(
      {{4, 1.0, 0.6}, {4, 1.0, 0.6}, {4, 1.0, 0.6}, {4, 1.0, 0.6}}, 1.0);
  const double rate = 0.9 * cluster.max_generic_rate();
  opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs, {});
  const auto opt_rates = solver.optimize(rate).rates;
  const auto trace = steady_trace(4000.0, rate, 7);
  runtime::ReplayOptions ropts;
  ropts.warmup = 400.0;

  const auto jsq = runtime::replay_policy(cluster, config_of(PolicyKind::JsqD), trace, ropts);
  PolicyConfig oc = config_of(PolicyKind::OptSplit);
  oc.weights = opt_rates;
  const auto split = runtime::replay_policy(cluster, oc, trace, ropts);
  EXPECT_LT(jsq.sim.generic_mean_response, 0.8 * split.sim.generic_mean_response);
}

TEST(Regimes, OptSplitBeatsJsq2UnderExtremeHeterogeneity) {
  // Two fast chassis next to four slow ones: a uniform probe pair
  // usually sees only slow servers, so naive JSQ(2) drowns them while
  // the fast capacity idles — the Gardner et al. regime where
  // power-of-d loses to the paper's split (by orders of magnitude; the
  // 5x assertion margin is deliberately loose).
  std::vector<model::BladeServer> servers;
  servers.push_back({4, 8.0, 2.0});
  servers.push_back({4, 8.0, 2.0});
  for (int i = 0; i < 4; ++i) servers.push_back({2, 1.0, 0.2});
  const model::Cluster cluster(std::move(servers), 1.0);
  const double rate = 0.85 * cluster.max_generic_rate();
  opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs, {});
  const auto opt_rates = solver.optimize(rate).rates;
  const auto trace = steady_trace(4000.0, rate, 7);
  runtime::ReplayOptions ropts;
  ropts.warmup = 400.0;

  const auto jsq = runtime::replay_policy(cluster, config_of(PolicyKind::JsqD), trace, ropts);
  PolicyConfig oc = config_of(PolicyKind::OptSplit);
  oc.weights = opt_rates;
  const auto split = runtime::replay_policy(cluster, oc, trace, ropts);
  EXPECT_LT(5.0 * split.sim.generic_mean_response, jsq.sim.generic_mean_response);

  // The heterogeneity-aware PROBE distribution (weighted d-choices)
  // repairs it: wjsq-2 must land within 2x of the split.
  PolicyConfig wc = config_of(PolicyKind::WeightedJsqD);
  wc.weights = opt_rates;
  const auto wjsq = runtime::replay_policy(cluster, wc, trace, ropts);
  EXPECT_LT(wjsq.sim.generic_mean_response, 2.0 * split.sim.generic_mean_response);
}

}  // namespace
