// Extension models: M/M/m/K finite capacity and the Allen-Cunneen M/G/m
// approximation, cross-checked against their exact special cases.
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mgm.hpp"
#include "queueing/mmm.hpp"
#include "queueing/mmmk.hpp"

namespace {

using blade::queue::MGmApprox;
using blade::queue::MMmKQueue;
using blade::queue::MMmQueue;

TEST(MMmK, ConstructionValidation) {
  EXPECT_THROW(MMmKQueue(0, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(MMmKQueue(4, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(MMmKQueue(2, 4, 0.0), std::invalid_argument);
}

TEST(MMmK, ErlangLossSpecialCase) {
  // K = m is Erlang-B: for m=1, blocking = a/(1+a).
  const MMmKQueue q(1, 1, 1.0);
  for (double a : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(q.blocking_probability(a), a / (1.0 + a), 1e-12);
  }
}

TEST(MMmK, StateProbabilitiesSumToOne) {
  const MMmKQueue q(3, 12, 0.8);
  const double lambda = 3.0;
  double total = 0.0;
  for (unsigned k = 0; k <= q.capacity(); ++k) total += q.p_k(k, lambda);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.p_k(q.capacity() + 1, lambda), 0.0);
}

TEST(MMmK, StableAboveNominalSaturation) {
  // Finite buffers admit any offered load; blocking absorbs the excess.
  const MMmKQueue q(2, 8, 1.0);
  const double lambda = 10.0;  // rho would be 5
  const double pb = q.blocking_probability(lambda);
  EXPECT_GT(pb, 0.5);
  EXPECT_LT(pb, 1.0);
  EXPECT_LT(q.effective_arrival_rate(lambda), 2.0 + 1e-9);
}

TEST(MMmK, ConvergesToInfiniteQueueForLargeK) {
  const MMmQueue inf(4, 1.0);
  const double lambda = 2.8;  // rho = 0.7
  const MMmKQueue big(4, 400, 1.0);
  EXPECT_NEAR(big.mean_response_time(lambda), inf.mean_response_time(lambda), 1e-6);
  EXPECT_LT(big.blocking_probability(lambda), 1e-12);
}

TEST(MMmK, ResponseOfAcceptedBoundedByCapacityOverService) {
  const MMmKQueue q(2, 6, 1.0);
  const double t = q.mean_response_time(50.0);
  // At most K tasks ahead, each served at rate 2 when both blades busy.
  EXPECT_LT(t, 6.0 * 1.0);
  EXPECT_GE(t, 1.0);
}

TEST(MMmK, BlockingMonotoneInLoad) {
  const MMmKQueue q(3, 10, 1.0);
  double prev = q.blocking_probability(0.5);
  for (double lam : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    const double cur = q.blocking_probability(lam);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(MGm, ExponentialScvRecoversMMm) {
  const MGmApprox g(5, 0.8, 1.0);
  const MMmQueue e(5, 0.8);
  for (double lam : {1.0, 3.0, 5.0}) {
    EXPECT_NEAR(g.mean_response_time(lam), e.mean_response_time(lam), 1e-12);
  }
}

TEST(MGm, DeterministicServiceHalvesWaiting) {
  const MGmApprox det(4, 1.0, 0.0);
  const MMmQueue exp(4, 1.0);
  const double lam = 3.2;
  EXPECT_NEAR(det.mean_waiting_time(lam), 0.5 * exp.mean_waiting_time(lam), 1e-12);
}

TEST(MGm, HighVariabilityInflatesWaiting) {
  const MGmApprox heavy(4, 1.0, 4.0);  // hyper-exponential-ish
  const MMmQueue exp(4, 1.0);
  const double lam = 3.2;
  EXPECT_NEAR(heavy.mean_waiting_time(lam), 2.5 * exp.mean_waiting_time(lam), 1e-12);
}

TEST(MGm, Validation) {
  EXPECT_THROW(MGmApprox(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MGmApprox(2, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MGmApprox(2, 1.0, -0.5), std::invalid_argument);
  const MGmApprox g(2, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(g.max_arrival_rate(), 2.0);
}

}  // namespace
