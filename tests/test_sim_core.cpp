// Simulator substrate: RNG streams, the event queue, and the engine.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace blade::sim;

TEST(Rng, DeterministicPerSeedAndStream) {
  RngStream a(42, 0), b(42, 0), c(42, 1), d(43, 0);
  const double va = a.uniform();
  EXPECT_DOUBLE_EQ(va, b.uniform());
  EXPECT_NE(va, c.uniform());
  EXPECT_NE(va, d.uniform());
}

TEST(Rng, UniformInOpenUnitInterval) {
  RngStream r(7, 0);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMatchesMoments) {
  RngStream r(11, 3);
  blade::util::RunningStats rs;
  const double mean = 2.5;
  for (int i = 0; i < 200000; ++i) rs.add(r.exponential(mean));
  EXPECT_NEAR(rs.mean(), mean, 0.03);
  // Exponential: stddev == mean.
  EXPECT_NEAR(rs.stddev(), mean, 0.05);
  EXPECT_THROW((void)r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, BelowCoversRange) {
  RngStream r(5, 0);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) ++hits[static_cast<std::size_t>(r.below(7))];
  for (int h : hits) EXPECT_GT(h, 700);
  EXPECT_THROW((void)r.below(0), std::invalid_argument);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(3.0, [&] { order.push_back(3); });
  (void)q.push(1.0, [&] { order.push_back(1); });
  (void)q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  (void)q.push(1.0, [&] { order.push_back(1); });
  (void)q.push(1.0, [&] { order.push_back(2); });
  (void)q.push(1.0, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue q;
  bool ran = false;
  const auto id = q.push(1.0, [&] { ran = true; });
  (void)q.push(2.0, [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancellingUnknownOrSpentIdsIsANoop) {
  EventQueue q;
  q.cancel(0);    // id 0 is never issued (ids start at 1)
  q.cancel(999);  // never issued
  const auto id = q.push(1.0, [] {});
  (void)q.pop().second;
  q.cancel(id);  // already popped
  EXPECT_TRUE(q.empty());
  // A fresh push after all that still works.
  (void)q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyQueriesThrow) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(Engine, ClockAdvancesWithEvents) {
  Engine e;
  std::vector<double> times;
  (void)e.schedule(5.0, [&] { times.push_back(e.now()); });
  (void)e.schedule(1.0, [&] {
    times.push_back(e.now());
    (void)e.schedule(1.5, [&] { times.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5, 5.0}));
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    (void)e.schedule(static_cast<double>(i), [&] { ++fired; });
  }
  e.run_until(4.5);
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(e.now(), 4.5);
  e.run_until(10.0);
  EXPECT_EQ(fired, 10);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const auto id = e.schedule(1.0, [&] { ran = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  (void)e.schedule(2.0, [] {});
  e.run();
  EXPECT_THROW((void)e.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW((void)e.schedule_at(1.0, [] {}), std::invalid_argument);
}

}  // namespace
