// Randomized controller battery: hundreds of seeded failure / recovery /
// load-swing sequences against small random clusters, with structural
// invariants checked after every event and a reconvergence check at the
// end of each sequence, plus the dispatch-policy churn corpus (every
// policy kind through drain / outage / recovery windows). Runs in every
// sanitizer tier (labels: fast, policy).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/optimizer.hpp"
#include "core/sharded.hpp"
#include "model/cluster.hpp"
#include "parallel/thread_pool.hpp"
#include "policy/policy.hpp"
#include "runtime/controller.hpp"
#include "sim/rng.hpp"

namespace {

using namespace blade;

struct Harness {
  model::Cluster cluster;
  runtime::Controller ctrl;
  std::vector<unsigned> avail;  // mirror of the expected blade counts
  double t = 0.0;
  double lambda;  // current offered-rate regime

  Harness(model::Cluster c, runtime::ControllerConfig cfg, double lam)
      : cluster(c), ctrl(std::move(c), cfg), avail(cluster.size()), lambda(lam) {
    for (std::size_t i = 0; i < cluster.size(); ++i) avail[i] = cluster.server(i).size();
  }
};

/// Every invariant that must hold whatever the event history was.
void check_invariants(const Harness& h, std::uint64_t seed, int step) {
  const double shed = h.ctrl.shed_probability();
  ASSERT_TRUE(std::isfinite(shed)) << "seed " << seed << " step " << step;
  ASSERT_GE(shed, 0.0) << "seed " << seed << " step " << step;
  ASSERT_LE(shed, 1.0) << "seed " << seed << " step " << step;

  const double sf = h.ctrl.stats().shed_fraction();
  ASSERT_GE(sf, 0.0) << "seed " << seed << " step " << step;
  ASSERT_LE(sf, 1.0) << "seed " << seed << " step " << step;

  bool any_alive = false;
  for (std::size_t i = 0; i < h.avail.size(); ++i) {
    ASSERT_EQ(h.ctrl.available_blades(i), h.avail[i]) << "seed " << seed << " step " << step;
    if (h.avail[i] > 0) any_alive = true;
  }

  const auto f = h.ctrl.routing_fractions();
  if (!any_alive) {
    ASSERT_TRUE(f.empty()) << "seed " << seed << " step " << step;
    ASSERT_EQ(shed, 1.0) << "seed " << seed << " step " << step;
    return;
  }
  ASSERT_EQ(f.size(), h.avail.size()) << "seed " << seed << " step " << step;
  double sum = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    ASSERT_TRUE(std::isfinite(f[i])) << "seed " << seed << " step " << step << " i " << i;
    ASSERT_GE(f[i], 0.0) << "seed " << seed << " step " << step << " i " << i;
    if (h.avail[i] == 0) {
      ASSERT_EQ(f[i], 0.0) << "seed " << seed << " step " << step << " dead i " << i;
    }
    sum += f[i];
  }
  ASSERT_NEAR(sum, 1.0, 1e-9) << "seed " << seed << " step " << step;
}

/// Feeds `count` evenly spaced arrivals at the harness's current rate.
void feed_arrivals(Harness& h, sim::RngStream& rng, int count) {
  const double gap = 1.0 / h.lambda;
  for (int k = 0; k < count; ++k) h.ctrl.on_generic_arrival(h.t += gap, rng.uniform());
}

void run_sequence(std::uint64_t seed) {
  sim::RngStream rng(seed, 7);

  // A small random heterogeneous cluster: 2-4 servers, 1-4 blades each.
  const std::size_t n = 2 + rng.below(3);
  std::vector<unsigned> sizes(n);
  std::vector<double> speeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    sizes[i] = 1 + static_cast<unsigned>(rng.below(4));
    speeds[i] = 0.5 + 1.5 * rng.uniform();
  }
  const double preload = 0.1 + 0.3 * rng.uniform();
  const auto cluster = model::make_cluster(sizes, speeds, 1.0, preload);
  const double lam_max = cluster.max_generic_rate();

  runtime::ControllerConfig cfg;
  cfg.half_life = 32.0 / lam_max;  // ~32 arrivals of memory at full load
  cfg.check_interval = 4;
  cfg.min_arrivals = 8;
  cfg.initial_lambda = 0.5 * lam_max;
  Harness h(cluster, cfg, (0.3 + 0.5 * rng.uniform()) * 0.95 * lam_max);
  check_invariants(h, seed, -1);

  const int events = 20;
  for (int step = 0; step < events; ++step) {
    const std::uint64_t kind = rng.below(4);
    if (kind == 0) {
      // Load swing, possibly beyond the ceiling (admission territory).
      h.lambda = (0.2 + 0.9 * rng.uniform()) * lam_max;
    } else if (kind == 1) {
      const std::size_t i = rng.below(n);
      const unsigned blades = static_cast<unsigned>(rng.below(sizes[i] + 1));  // 0 = all
      h.ctrl.on_failure(h.t += 1e-3, i, blades);
      const unsigned lost = blades == 0 ? h.avail[i] : std::min(h.avail[i], blades);
      h.avail[i] -= lost;
    } else if (kind == 2) {
      const std::size_t i = rng.below(n);
      const unsigned blades = static_cast<unsigned>(rng.below(sizes[i] + 1));
      h.ctrl.on_recovery(h.t += 1e-3, i, blades);
      const unsigned missing = sizes[i] - h.avail[i];
      h.avail[i] += blades == 0 ? missing : std::min(missing, blades);
    } else {
      h.ctrl.on_special_arrival(h.t += 1e-3, rng.below(n));
    }
    feed_arrivals(h, rng, 64);
    check_invariants(h, seed, step);
  }

  // Reconverge: restore the full topology, settle on a feasible rate, and
  // run the estimators for ~8 half-lives of stationary traffic.
  for (std::size_t i = 0; i < n; ++i) {
    if (h.avail[i] < sizes[i]) {
      h.ctrl.on_recovery(h.t += 1e-3, i);
      h.avail[i] = sizes[i];
    }
  }
  h.lambda = 0.5 * lam_max;
  const int settle = static_cast<int>(std::ceil(8.0 * cfg.half_life * h.lambda)) + 64;
  feed_arrivals(h, rng, settle);
  h.ctrl.resolve_now(h.t);
  check_invariants(h, seed, events);

  // Nothing sheds at half load, and the estimate has re-locked.
  ASSERT_EQ(h.ctrl.shed_probability(), 0.0) << "seed " << seed;
  ASSERT_NEAR(h.ctrl.last_solved_lambda(), h.lambda, 0.05 * h.lambda) << "seed " << seed;

  // The published split must be the static optimum for exactly the
  // inputs the last solve consumed: its lambda-hat and its (possibly
  // estimator-fed, ceiling-clamped) special rates. Rebuild that instance
  // and solve it independently.
  std::vector<model::BladeServer> eff;
  for (std::size_t i = 0; i < n; ++i) {
    const double cap = sizes[i] * speeds[i] / cluster.rbar();
    const double special = std::min(h.ctrl.estimated_special_rate(i, h.t),
                                    cfg.utilization_ceiling * cap);
    eff.emplace_back(sizes[i], speeds[i], special);
  }
  const auto sol = opt::LoadDistributionOptimizer(model::Cluster(std::move(eff), cluster.rbar()),
                                                  queue::Discipline::Fcfs)
                       .optimize(h.ctrl.last_solved_lambda());
  const auto f = h.ctrl.routing_fractions();
  ASSERT_EQ(f.size(), cluster.size()) << "seed " << seed;
  for (std::size_t i = 0; i < f.size(); ++i) {
    ASSERT_NEAR(f[i], sol.rates[i] / h.ctrl.last_solved_lambda(), 1e-3) << "seed " << seed;
  }
}

TEST(RuntimeFuzz, RandomFailureRecoveryLoadSwingSequences) {
  // >= 200 sequences per the acceptance bar; each is ~20 events plus a
  // reconvergence tail, so the whole battery stays sanitizer-friendly.
  for (std::uint64_t seed = 1; seed <= 220; ++seed) run_sequence(seed);
}

/// The sharded variant of run_sequence: a fleet-scale cluster (n = 5000
/// blades in a dozen SKU blocks, so coalescing keeps the per-cell solves
/// cheap) driven through the controller with shard_cells = 8. Same
/// structural invariants per event, plus a closure check: the published
/// split must equal an independent sharded solve of the exact instance
/// the controller last consumed — and, every tenth seed, the flat paper
/// solver on the same instance (the nesting argument end to end).
void run_sharded_sequence(std::uint64_t seed) {
  sim::RngStream rng(seed, 11);

  const std::size_t n = 5000;
  const std::size_t skus = 12;
  std::vector<unsigned> sku_size(skus);
  std::vector<double> sku_speed(skus);
  for (std::size_t s = 0; s < skus; ++s) {
    sku_size[s] = 1 + static_cast<unsigned>(rng.below(6));
    sku_speed[s] = 0.5 + 2.0 * rng.uniform();
  }
  std::vector<unsigned> sizes(n);
  std::vector<double> speeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = i * skus / n;  // contiguous SKU blocks
    sizes[i] = sku_size[s];
    speeds[i] = sku_speed[s];
  }
  const double preload = 0.1 + 0.2 * rng.uniform();
  const auto cluster = model::make_cluster(sizes, speeds, 1.0, preload);
  const double lam_max = cluster.max_generic_rate();

  runtime::ControllerConfig cfg;
  cfg.shard_cells = 8;
  cfg.half_life = 32.0 / lam_max;
  cfg.check_interval = 8;
  cfg.min_arrivals = 8;
  cfg.initial_lambda = 0.5 * lam_max;
  Harness h(cluster, cfg, (0.3 + 0.5 * rng.uniform()) * 0.95 * lam_max);
  check_invariants(h, seed, -1);

  const int events = 10;
  for (int step = 0; step < events; ++step) {
    const std::uint64_t kind = rng.below(4);
    if (kind == 0) {
      h.lambda = (0.2 + 0.9 * rng.uniform()) * lam_max;
    } else if (kind == 1) {
      const std::size_t i = rng.below(n);
      const unsigned blades = static_cast<unsigned>(rng.below(sizes[i] + 1));  // 0 = all
      h.ctrl.on_failure(h.t += 1e-3, i, blades);
      const unsigned lost = blades == 0 ? h.avail[i] : std::min(h.avail[i], blades);
      h.avail[i] -= lost;
    } else if (kind == 2) {
      const std::size_t i = rng.below(n);
      const unsigned blades = static_cast<unsigned>(rng.below(sizes[i] + 1));
      h.ctrl.on_recovery(h.t += 1e-3, i, blades);
      const unsigned missing = sizes[i] - h.avail[i];
      h.avail[i] += blades == 0 ? missing : std::min(missing, blades);
    } else {
      h.ctrl.on_special_arrival(h.t += 1e-3, rng.below(n));
    }
    feed_arrivals(h, rng, 32);
    check_invariants(h, seed, step);
  }

  // Reconverge on the full topology at half load.
  for (std::size_t i = 0; i < n; ++i) {
    if (h.avail[i] < sizes[i]) {
      h.ctrl.on_recovery(h.t += 1e-3, i);
      h.avail[i] = sizes[i];
    }
  }
  h.lambda = 0.5 * lam_max;
  const int settle = static_cast<int>(std::ceil(8.0 * cfg.half_life * h.lambda)) + 64;
  feed_arrivals(h, rng, settle);
  h.ctrl.resolve_now(h.t);
  check_invariants(h, seed, events);

  ASSERT_EQ(h.ctrl.shed_probability(), 0.0) << "seed " << seed;
  ASSERT_NEAR(h.ctrl.last_solved_lambda(), h.lambda, 0.05 * h.lambda) << "seed " << seed;

  // Closure: rebuild the instance the last solve consumed and solve it
  // independently through the sharded optimizer.
  std::vector<model::BladeServer> eff;
  eff.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double cap = sizes[i] * speeds[i] / cluster.rbar();
    const double special = std::min(h.ctrl.estimated_special_rate(i, h.t),
                                    cfg.utilization_ceiling * cap);
    eff.emplace_back(sizes[i], speeds[i], special);
  }
  const model::Cluster eff_cluster(std::move(eff), cluster.rbar());
  const double lam_hat = h.ctrl.last_solved_lambda();
  opt::ShardOptions shard;
  shard.cells = cfg.shard_cells;
  const auto sharded =
      opt::ShardedOptimizer(eff_cluster, queue::Discipline::Fcfs, {}, shard).optimize(lam_hat);
  const auto f = h.ctrl.routing_fractions();
  ASSERT_EQ(f.size(), n) << "seed " << seed;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(f[i], sharded.dist.rates[i] / lam_hat, 1e-3) << "seed " << seed << " i " << i;
  }

  // Every tenth seed, close the loop against the flat paper solver too:
  // the published fleet-scale split is the same optimum the seed solver
  // would have produced, to the differential battery's tolerance.
  if (seed % 10 == 0) {
    const auto flat =
        opt::LoadDistributionOptimizer(eff_cluster, queue::Discipline::Fcfs).optimize(lam_hat);
    ASSERT_NEAR(sharded.dist.response_time, flat.response_time,
                1e-8 * std::max(1.0, std::abs(flat.response_time)))
        << "seed " << seed;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(f[i], flat.rates[i] / lam_hat, 1e-3) << "seed " << seed << " i " << i;
    }
  }
}

TEST(RuntimeFuzz, ShardedControllerSequencesAtFleetScale) {
  // ~60 sequences: enough to cover every event-kind interleaving at this
  // length while staying inside the sanitizer-tier time budget.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) run_sharded_sequence(seed);
}

// ---------------------------------------------------------------------------
// Dispatch-policy fuzz corpus: every policy kind driven through random
// failure / drain / recovery churn on small random fleets, with the
// availability contract and the probe-cost bound checked at EVERY
// arrival, and a reconvergence check (empirical routing fractions back
// within tolerance of the light-traffic closed form) after recovery.

policy::StateView fleet_view(const std::vector<policy::ServerState>& fleet) {
  return policy::StateView{&fleet,
                           [](const void* ctx, std::size_t i) {
                             return (*static_cast<const std::vector<policy::ServerState>*>(
                                 ctx))[i];
                           },
                           fleet.size()};
}

/// Routes one arrival and checks the per-arrival invariants: exactly one
/// task routed, destination in range and available whenever ANY server
/// is, and for the d-choices kinds at most min(d, n) probes charged.
void route_checked(policy::DispatchPolicy& p, std::vector<policy::ServerState>& fleet,
                   std::uint64_t seed, int step) {
  const auto before = p.counters();
  const std::size_t dest = p.route(fleet_view(fleet));
  const auto& after = p.counters();
  ASSERT_LT(dest, fleet.size()) << p.name() << " seed " << seed << " step " << step;
  ASSERT_EQ(after.routed, before.routed + 1) << p.name() << " seed " << seed;

  bool any_alive = false;
  for (const auto& s : fleet) any_alive = any_alive || s.available > 0;
  if (any_alive) {
    ASSERT_GT(fleet[dest].available, 0u)
        << p.name() << " seed " << seed << " step " << step << " routed to dark server "
        << dest;
  }
  const auto kind = p.config().kind;
  if (policy::probes_queue_state(kind) && kind != policy::PolicyKind::Jsq) {
    const std::uint64_t bound =
        std::min<std::uint64_t>(p.config().probe_d, fleet.size());
    ASSERT_LE(after.probes - before.probes, bound)
        << p.name() << " seed " << seed << " step " << step;
  }
  fleet[dest].in_system += 1;
}

void run_policy_sequence(std::uint64_t seed, policy::PolicyKind kind) {
  sim::RngStream rng(seed, 13);

  const std::size_t n = 2 + rng.below(4);  // 2-5 servers
  std::vector<policy::ServerState> fleet(n);
  policy::PolicyConfig cfg;
  cfg.kind = kind;
  cfg.probe_d = 2;
  cfg.seed = seed;
  cfg.stream = 29;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned blades = 1 + static_cast<unsigned>(rng.below(4));
    fleet[i] = {0.5 + 1.5 * rng.uniform(), blades, blades, 0};
    if (kind == policy::PolicyKind::SpeedBiasedD) cfg.speeds.push_back(fleet[i].speed);
    if (policy::needs_weights(kind)) cfg.weights.push_back(0.2 + rng.uniform());
  }
  ASSERT_TRUE(cfg.validate(n).ok()) << policy::to_string(kind) << " seed " << seed;
  policy::DispatchPolicy p(cfg, n);

  // Pre-churn: healthy fleet, queues build and drain.
  for (int k = 0; k < 40; ++k) {
    route_checked(p, fleet, seed, k);
    if (k % 2 == 1) {
      const std::size_t i = rng.below(n);
      if (fleet[i].in_system > 0) fleet[i].in_system -= 1;
    }
  }

  // Churn: interleave arrivals with random drains / full failures /
  // partial recoveries. The availability contract must hold through
  // every intermediate topology, including an all-dark fleet.
  for (int k = 0; k < 120; ++k) {
    const std::uint64_t ev = rng.below(6);
    const std::size_t i = rng.below(n);
    if (ev == 0) {
      fleet[i].available = 0;  // full outage
    } else if (ev == 1) {
      fleet[i].available = static_cast<unsigned>(rng.below(fleet[i].blades + 1));
    } else if (ev == 2) {
      fleet[i].available = fleet[i].blades;  // recovery
    } else if (ev == 3 && fleet[i].in_system > 0) {
      fleet[i].in_system -= 1;  // departure
    }
    route_checked(p, fleet, seed, 1000 + k);
  }

  // Recovery + reconvergence: restore every server, drain all queues,
  // and check the empirical split against the light-traffic oracle. The
  // 0.12 absolute tolerance covers 3000-draw noise on fractions up to
  // ~0.9 with margin (3 s.e. < 0.03); what it actually guards is state
  // poisoning — a policy whose churn history biases later routing.
  for (auto& s : fleet) {
    s.available = s.blades;
    s.in_system = 0;
  }
  const int draws = 3000;
  std::vector<double> measured(n, 0.0);
  const auto frozen = fleet;  // light-traffic limit: queues pinned empty
  for (int k = 0; k < draws; ++k) measured[p.route(fleet_view(frozen))] += 1.0;
  const auto oracle = policy::light_traffic_fractions(cfg, frozen);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(measured[i] / draws, oracle[i], 0.12)
        << policy::to_string(kind) << " seed " << seed << " server " << i;
  }
}

TEST(RuntimeFuzz, PolicyChurnSequencesForEveryKind) {
  // 60 seeds x all 8 kinds; each sequence is 160 checked arrivals plus a
  // 3000-draw reconvergence tail, cheap enough for every sanitizer tier.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    for (const policy::PolicyKind kind : policy::all_policy_kinds()) {
      run_policy_sequence(seed, kind);
    }
  }
}

}  // namespace
