// Parameterized shape properties across ALL twelve paper figures: every
// series increasing and convex in lambda', five series per figure, each
// series ending before its group's saturation point, and priority
// figures dominating their FCFS siblings.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/experiments.hpp"
#include "model/paper_configs.hpp"

namespace {

using blade::cloud::figure;
using blade::cloud::FigureData;

std::vector<blade::model::NamedCluster> groups_for(int number) {
  using namespace blade::model;
  switch (number) {
    case 4: case 5: return size_groups();
    case 6: case 7: return speed_groups();
    case 8: case 9: return requirement_groups();
    case 10: case 11: return special_rate_groups();
    case 12: case 13: return size_heterogeneity_groups();
    default: return speed_heterogeneity_groups();
  }
}

class FigureShape : public ::testing::TestWithParam<int> {
 protected:
  static constexpr std::size_t kPoints = 10;
  FigureData fig() const { return figure(GetParam(), kPoints); }
};

TEST_P(FigureShape, HasFiveNonTrivialSeries) {
  const auto f = fig();
  ASSERT_EQ(f.series.size(), 5u);
  for (const auto& s : f.series) {
    EXPECT_GE(s.x.size(), 3u) << s.label;
    EXPECT_EQ(s.x.size(), s.y.size()) << s.label;
    EXPECT_FALSE(s.label.empty());
  }
}

TEST_P(FigureShape, SeriesAreStrictlyIncreasing) {
  for (const auto& s : fig().series) {
    for (std::size_t i = 1; i < s.y.size(); ++i) {
      EXPECT_GT(s.y[i], s.y[i - 1]) << s.label << " point " << i;
      EXPECT_GT(s.x[i], s.x[i - 1]) << s.label << " point " << i;
    }
  }
}

TEST_P(FigureShape, WeightedValueFunctionIsConvex) {
  // The *average* T'*(lambda') need not be convex (weights shift as
  // servers activate), but the total weighted cost W = lambda' T'*
  // is the value function of a convex program with a linear parameter,
  // hence convex. The grid is uniform, so midpoint convexity is three
  // consecutive points.
  for (const auto& s : fig().series) {
    for (std::size_t i = 1; i + 1 < s.y.size(); ++i) {
      const double w_prev = s.x[i - 1] * s.y[i - 1];
      const double w_mid = s.x[i] * s.y[i];
      const double w_next = s.x[i + 1] * s.y[i + 1];
      EXPECT_LE(w_mid, 0.5 * (w_prev + w_next) + 1e-9) << s.label << " point " << i;
    }
  }
}

TEST_P(FigureShape, SeriesEndBeforeSaturation) {
  const auto f = fig();
  const auto groups = groups_for(GetParam());
  ASSERT_EQ(groups.size(), f.series.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const double sat = groups[g].cluster.max_generic_rate();
    EXPECT_LT(f.series[g].x.back(), sat) << groups[g].name;
    // ...but get reasonably close, as the paper's curves do.
    EXPECT_GT(f.series[g].x.back(), 0.5 * sat) << groups[g].name;
  }
}

TEST_P(FigureShape, ResponseTimesExceedBestServiceTime) {
  const auto f = fig();
  const auto groups = groups_for(GetParam());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    double fastest = 0.0;
    for (const auto& s : groups[g].cluster.servers()) fastest = std::max(fastest, s.speed());
    const double min_service = groups[g].cluster.rbar() / fastest;
    for (double y : f.series[g].y) EXPECT_GT(y, min_service - 1e-12) << groups[g].name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperFigures, FigureShape,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
                         [](const auto& info) { return "fig" + std::to_string(info.param); });

class FigurePairs : public ::testing::TestWithParam<int> {};

TEST_P(FigurePairs, PriorityVersionDominatesFcfs) {
  const int fcfs_number = GetParam();
  const auto a = figure(fcfs_number, 8);
  const auto b = figure(fcfs_number + 1, 8);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t g = 0; g < a.series.size(); ++g) {
    const std::size_t n = std::min(a.series[g].x.size(), b.series[g].x.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(a.series[g].x[i], b.series[g].x[i]);
      EXPECT_GT(b.series[g].y[i], a.series[g].y[i])
          << "fig" << fcfs_number << " group " << g << " point " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FcfsPriorityPairs, FigurePairs, ::testing::Values(4, 6, 8, 10, 12, 14),
                         [](const auto& info) {
                           return "fig" + std::to_string(info.param) + "_vs_" +
                                  std::to_string(info.param + 1);
                         });

}  // namespace
