// Theorems 1 and 3: single-blade closed forms must agree with the general
// double-bisection optimizer, including the active-set regime the raw
// formulas do not cover.
#include <gtest/gtest.h>

#include <cmath>

#include "core/closed_form.hpp"
#include "core/kkt.hpp"
#include "core/optimizer.hpp"
#include "model/cluster.hpp"

namespace {

using namespace blade;
using opt::closed_form_distribution;
using opt::LoadDistributionOptimizer;
using queue::Discipline;

model::Cluster single_blade_cluster(double preload = 0.3) {
  // Heterogeneous speeds, one blade each (the theorem regime).
  std::vector<unsigned> sizes(6, 1);
  std::vector<double> speeds{1.6, 1.4, 1.2, 1.0, 0.8, 0.6};
  return model::make_cluster(sizes, speeds, 1.0, preload);
}

TEST(Theorem1, PhiFormulaPositive) {
  const auto c = single_blade_cluster();
  const double lambda = 0.5 * c.max_generic_rate();
  EXPECT_GT(opt::theorem1_phi(c, lambda), 0.0);
}

TEST(Theorem1, RejectsMultiBladeClusters) {
  const model::Cluster c({model::BladeServer(2, 1.0, 0.2)}, 1.0);
  EXPECT_THROW((void)opt::theorem1_rates(c, 0.5), std::invalid_argument);
  EXPECT_THROW((void)closed_form_distribution(c, Discipline::Fcfs, 0.5),
               std::invalid_argument);
}

TEST(Theorem1, RatesMatchGeneralOptimizerWhenAllActive) {
  const auto c = single_blade_cluster();
  const double lambda = 0.6 * c.max_generic_rate();  // heavy enough: all active
  const auto raw = opt::theorem1_rates(c, lambda);
  const auto general = LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(lambda);
  ASSERT_EQ(raw.size(), general.rates.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_NEAR(raw[i], general.rates[i], 1e-6) << "server " << i;
    EXPECT_GT(raw[i], 0.0);
  }
}

TEST(Theorem1, RawFormulaGoesNegativeAtLightLoad) {
  // Documents why the active-set variant exists.
  const auto c = single_blade_cluster();
  const auto raw = opt::theorem1_rates(c, 0.02 * c.max_generic_rate());
  double min_rate = 0.0;
  for (double r : raw) min_rate = std::min(min_rate, r);
  EXPECT_LT(min_rate, 0.0);
}

TEST(ClosedForm, MatchesOptimizerFcfsAcrossLoads) {
  const auto c = single_blade_cluster();
  const LoadDistributionOptimizer general(c, Discipline::Fcfs);
  for (double frac : {0.02, 0.1, 0.3, 0.6, 0.9, 0.97}) {
    const double lambda = frac * c.max_generic_rate();
    const auto cf = closed_form_distribution(c, Discipline::Fcfs, lambda);
    const auto gd = general.optimize(lambda);
    EXPECT_NEAR(cf.response_time, gd.response_time, 1e-7) << "frac=" << frac;
    for (std::size_t i = 0; i < cf.rates.size(); ++i) {
      EXPECT_NEAR(cf.rates[i], gd.rates[i], 1e-5) << "frac=" << frac << " server " << i;
    }
  }
}

TEST(ClosedForm, MatchesOptimizerPriorityAcrossLoads) {
  const auto c = single_blade_cluster(0.4);
  const LoadDistributionOptimizer general(c, Discipline::SpecialPriority);
  for (double frac : {0.05, 0.3, 0.7, 0.95}) {
    const double lambda = frac * c.max_generic_rate();
    const auto cf = closed_form_distribution(c, Discipline::SpecialPriority, lambda);
    const auto gd = general.optimize(lambda);
    EXPECT_NEAR(cf.response_time, gd.response_time, 1e-7) << "frac=" << frac;
    for (std::size_t i = 0; i < cf.rates.size(); ++i) {
      EXPECT_NEAR(cf.rates[i], gd.rates[i], 1e-5) << "frac=" << frac << " server " << i;
    }
  }
}

TEST(ClosedForm, ActiveSetClampsSlowServersAtLightLoad) {
  const auto c = single_blade_cluster();
  const double lambda = 0.02 * c.max_generic_rate();
  const auto cf = closed_form_distribution(c, Discipline::Fcfs, lambda);
  EXPECT_NEAR(cf.total_rate(), lambda, 1e-9);
  // The slowest server must be inactive at this load.
  EXPECT_DOUBLE_EQ(cf.rates.back(), 0.0);
  EXPECT_GT(cf.rates.front(), 0.0);
  const auto rep = opt::verify_kkt(c, Discipline::Fcfs, lambda, cf.rates, 1e-5);
  EXPECT_TRUE(rep.optimal()) << rep.detail;
}

TEST(ClosedForm, SolutionsSatisfyKkt) {
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto c = single_blade_cluster();
    for (double frac : {0.2, 0.6, 0.9}) {
      const double lambda = frac * c.max_generic_rate();
      const auto cf = closed_form_distribution(c, d, lambda);
      const auto rep = opt::verify_kkt(c, d, lambda, cf.rates, 1e-5);
      EXPECT_TRUE(rep.optimal()) << rep.detail;
    }
  }
}

TEST(Theorem3, RateClampedAtZero) {
  const model::BladeServer slow(1, 0.5, 0.3);
  // Tiny phi: the formula's sqrt dominates and the clamp must engage.
  EXPECT_DOUBLE_EQ(opt::theorem3_rate(slow, 1.0, 1.0, 1e-12), 0.0);
  // Large phi admits positive load.
  EXPECT_GT(opt::theorem3_rate(slow, 1.0, 1.0, 1e3), 0.0);
}

TEST(Theorem3, RateIncreasingInPhi) {
  const model::BladeServer s(1, 1.2, 0.2);
  double prev = 0.0;
  for (double phi : {0.1, 0.5, 1.0, 5.0, 50.0}) {
    const double r = opt::theorem3_rate(s, 1.0, 2.0, phi);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(ClosedForm, FeasibilityValidation) {
  const auto c = single_blade_cluster();
  EXPECT_THROW((void)closed_form_distribution(c, Discipline::Fcfs, 0.0), std::invalid_argument);
  EXPECT_THROW((void)closed_form_distribution(c, Discipline::Fcfs, c.max_generic_rate()),
               std::invalid_argument);
}

TEST(ClosedForm, HomogeneousSplitsEvenly) {
  const auto c = model::make_cluster({1, 1, 1}, {1.0, 1.0, 1.0}, 1.0, 0.2);
  const double lambda = 0.5 * c.max_generic_rate();
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto cf = closed_form_distribution(c, d, lambda);
    for (double r : cf.rates) EXPECT_NEAR(r, lambda / 3.0, 1e-9);
  }
}

}  // namespace
