// Unit tests for the tests/support conformance library itself -- the
// oracle layer guards every other suite, so its comparators, generators,
// transforms, and golden diffing get their own coverage.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/kkt.hpp"
#include "model/paper_configs.hpp"
#include "support/comparators.hpp"
#include "support/generators.hpp"
#include "support/golden.hpp"
#include "support/metamorphic.hpp"
#include "support/oracles.hpp"

namespace {

using namespace blade;
using namespace blade::testsupport;

TEST(Comparators, MixedToleranceSemantics) {
  const Tolerance tol{1e-6, 1e-9};
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 5e-7, tol));
  EXPECT_FALSE(approx_equal(1.0, 1.0 + 5e-6, tol));
  // Absolute floor: tiny values compare on abs, not rel.
  EXPECT_TRUE(approx_equal(0.0, 5e-10, tol));
  EXPECT_FALSE(approx_equal(0.0, 5e-9, tol));
  EXPECT_FALSE(approx_equal(1.0, std::nan(""), tol));
}

TEST(Comparators, ReportCollectsEveryMismatch) {
  CompareReport rep;
  rep.check("a", 1.0, 1.0, {1e-6, 1e-9});
  rep.check("b", 1.0, 2.0, {1e-6, 1e-9});
  rep.check("c", 3.0, 4.0, {1e-6, 1e-9});
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.mismatches.size(), 2u);
  EXPECT_EQ(rep.mismatches[0].what, "b");
  EXPECT_NE(rep.summary().find("c: actual=3"), std::string::npos);
}

TEST(Comparators, VectorLengthMismatchIsAMismatch) {
  const auto rep = compare_vectors("v", {1.0, 2.0}, {1.0}, {1e-6, 1e-9});
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.mismatches[0].what, "v.size()");
}

TEST(Generators, EveryRegimeYieldsValidDeterministicInstances) {
  for (Regime r : all_regimes()) {
    const auto a = make_instance(r, 7, queue::Discipline::Fcfs);
    const auto b = make_instance(r, 7, queue::Discipline::Fcfs);
    ASSERT_EQ(a.cluster.size(), b.cluster.size()) << to_string(r);
    for (std::size_t i = 0; i < a.cluster.size(); ++i) {
      EXPECT_EQ(a.cluster.server(i), b.cluster.server(i)) << to_string(r);
    }
    EXPECT_EQ(a.lambda, b.lambda) << to_string(r);
    EXPECT_GT(a.lambda, 0.0) << to_string(r);
    EXPECT_LT(a.lambda, a.cluster.max_generic_rate()) << to_string(r);
    for (const auto& s : a.cluster.servers()) {
      EXPECT_LT(s.special_utilization(a.cluster.rbar()), 1.0) << to_string(r);
    }
  }
}

TEST(Generators, RegimesActuallyDiffer) {
  const auto single = make_instance(Regime::SingleBlade, 1, queue::Discipline::Fcfs);
  EXPECT_TRUE(single.cluster.all_single_blade());

  const auto large = make_instance(Regime::LargeServers, 1, queue::Discipline::Fcfs);
  for (const auto& s : large.cluster.servers()) EXPECT_GE(s.size(), 32u);

  const auto sat = make_instance(Regime::NearSaturation, 1, queue::Discipline::Fcfs);
  EXPECT_NEAR(sat.lambda / sat.cluster.max_generic_rate(), 0.995, 1e-12);

  const auto mixed = make_instance(Regime::SizeExtremes, 1, queue::Discipline::Fcfs);
  unsigned lo = ~0u, hi = 0;
  for (const auto& s : mixed.cluster.servers()) {
    lo = std::min(lo, s.size());
    hi = std::max(hi, s.size());
  }
  EXPECT_EQ(lo, 1u);
  EXPECT_GE(hi, 32u);
}

TEST(Metamorphic, TransformsPreserveStructure) {
  const auto c = model::paper_example_cluster();
  const auto perm = rotation(c.size(), 2);
  const auto moved = permuted(c, perm);
  ASSERT_EQ(moved.size(), c.size());
  EXPECT_EQ(moved.server(0), c.server(perm[0]));

  const auto scaled = speed_scaled(c, 2.0);
  EXPECT_NEAR(scaled.total_speed(), 2.0 * c.total_speed(), 1e-12);
  EXPECT_NEAR(scaled.max_generic_rate(), 2.0 * c.max_generic_rate(), 1e-9);

  const auto split = split_server(c, 1);  // server 1 has m = 4
  ASSERT_EQ(split.size(), c.size() + 1);
  EXPECT_EQ(split.total_blades(), c.total_blades());
  EXPECT_NEAR(split.total_special_rate(), c.total_special_rate(), 1e-12);

  EXPECT_THROW((void)permuted(c, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)speed_scaled(c, 0.0), std::invalid_argument);
  // Single-blade servers (m = 1) cannot be halved.
  const auto single = make_instance(Regime::SingleBlade, 1, queue::Discipline::Fcfs);
  EXPECT_THROW((void)split_server(single.cluster, 0), std::invalid_argument);
}

TEST(Oracles, ClosedFormPathEngagesOnlyForSingleBlade) {
  const auto single = make_instance(Regime::SingleBlade, 2, queue::Discipline::Fcfs);
  auto runs = run_solver_paths(single.cluster, single.discipline, single.lambda);
  bool has_cf = false;
  for (const auto& r : runs) has_cf = has_cf || r.name == "closed_form";
  EXPECT_TRUE(has_cf);

  const auto multi = make_instance(Regime::LargeServers, 2, queue::Discipline::Fcfs);
  runs = run_solver_paths(multi.cluster, multi.discipline, multi.lambda);
  for (const auto& r : runs) EXPECT_NE(r.name, "closed_form");
}

TEST(Oracles, CrossCheckFlagsACorruptedDistribution) {
  const auto inst = make_instance(Regime::Random, 5, queue::Discipline::Fcfs);
  // Sanity first: the honest solve passes.
  EXPECT_TRUE(cross_check(inst.cluster, inst.discipline, inst.lambda).ok());
  // A deliberately wrong "optimum" must be caught by the KKT oracle.
  std::vector<double> bad(inst.cluster.size(), inst.lambda / inst.cluster.size());
  bad[0] *= 1.5;
  bad[1] *= 0.5;
  const auto kkt = opt::verify_kkt(inst.cluster, inst.discipline, inst.lambda, bad, 1e-4);
  EXPECT_FALSE(kkt.optimal());
}

TEST(Golden, NumericDiffToleratesFormattingNotValues) {
  EXPECT_FALSE(csv_numeric_diff("a,1.0\n", "a,0.99999999\n", 1e-6).has_value());
  EXPECT_FALSE(csv_numeric_diff("a,1.0\n", "a,1.000000e+00\n", 1e-6).has_value());
  EXPECT_TRUE(csv_numeric_diff("a,1.0\n", "a,1.001\n", 1e-6).has_value());
  EXPECT_TRUE(csv_numeric_diff("a,1.0\n", "b,1.0\n", 1e-6).has_value());
  EXPECT_TRUE(csv_numeric_diff("a,1.0\n", "a,1.0,2.0\n", 1e-6).has_value());
  EXPECT_TRUE(csv_numeric_diff("a,1.0\n", "a,1.0\nb,2.0\n", 1e-6).has_value());
}

TEST(Golden, FigureIdsAndRoundTrip) {
  EXPECT_EQ(golden_figure_id(4), "fig04");
  EXPECT_EQ(golden_figure_id(15), "fig15");
  EXPECT_EQ(golden_figure_numbers().size(), 12u);
}

}  // namespace
