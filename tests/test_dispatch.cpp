// Data-plane battery: the fused alias-table layout against a two-array
// reference (bitwise, on pinned RNG streams), the lane-batched Erlang
// kernels against the scalar ones, the certified marginal surrogate's
// error-bound honesty, the controller's marginal-drift mode, and the
// per-thread DispatchShard (determinism, batching, blackout, and the
// K-routing-threads-vs-publishing-controller race that rides the fast
// label into the TSan tier).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/marginal_cache.hpp"
#include "model/cluster.hpp"
#include "model/paper_configs.hpp"
#include "numerics/erlang.hpp"
#include "numerics/erlang_batch.hpp"
#include "queueing/blade_queue.hpp"
#include "runtime/controller.hpp"
#include "runtime/dispatch_shard.hpp"
#include "sim/rng.hpp"
#include "util/alias_table.hpp"

namespace {

using namespace blade;

// --- fused alias layout vs two-array reference ----------------------------

/// The pre-fusion AliasTable layout: Vose's construction, verbatim, into
/// two parallel vectors. The fused bucket table must reproduce this
/// structure (and therefore every sample) bit for bit.
struct TwoArrayAlias {
  std::vector<double> prob;
  std::vector<std::uint32_t> alias;

  explicit TwoArrayAlias(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    double total = 0.0;
    for (double w : weights) total += w;
    std::vector<double> fractions(n);
    for (std::size_t i = 0; i < n; ++i) fractions[i] = weights[i] / total;
    std::vector<double> scaled(n);
    std::size_t heaviest = 0;
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = fractions[i] * static_cast<double>(n);
      if (fractions[i] > fractions[heaviest]) heaviest = i;
    }
    prob.assign(n, 0.0);
    alias.assign(n, static_cast<std::uint32_t>(heaviest));
    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    for (std::size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      small.pop_back();
      const std::uint32_t l = large.back();
      large.pop_back();
      prob[s] = scaled[s];
      alias[s] = l;
      scaled[l] -= 1.0 - scaled[s];
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    while (!large.empty()) {
      prob[large.back()] = 1.0;
      large.pop_back();
    }
    while (!small.empty()) {
      const std::uint32_t s = small.back();
      small.pop_back();
      prob[s] = fractions[s] > 0.0 ? 1.0 : 0.0;
    }
  }

  [[nodiscard]] std::size_t sample(double u1, double u2) const noexcept {
    const std::size_t n = prob.size();
    std::size_t i = static_cast<std::size_t>(u1 * static_cast<double>(n));
    if (i >= n) i = n - 1;
    return u2 < prob[i] ? i : alias[i];
  }
};

std::vector<std::vector<double>> alias_weight_cases() {
  return {
      {1.0},
      {1.0, 1.0, 1.0, 1.0},
      {0.25, 0.5, 0.125, 0.125},
      {5.0, 1.0, 0.0, 3.0, 0.0},  // removed servers stay unsampled
      {1e-9, 1.0, 1e9},
      {0.3, 0.0, 0.0, 0.0, 0.7},
      {7.0, 11.0, 13.0, 17.0, 19.0, 23.0, 29.0, 31.0, 37.0},
  };
}

TEST(AliasFusedLayout, BucketsMatchTwoArrayReferenceBitwise) {
  for (const auto& w : alias_weight_cases()) {
    const util::AliasTable fused(w);
    const TwoArrayAlias ref(w);
    ASSERT_EQ(fused.size(), ref.prob.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
      EXPECT_EQ(fused.bucket_prob(i), ref.prob[i]) << "i=" << i;
      EXPECT_EQ(fused.bucket_alias(i), ref.alias[i]) << "i=" << i;
    }
  }
}

// The acceptance regression: a pinned RNG stream drives both layouts;
// the routed sequence must be identical sample for sample, so swapping
// in the fused table cannot have changed a single routing decision.
TEST(AliasFusedLayout, PinnedRoutedSequenceMatchesReference) {
  for (const auto& w : alias_weight_cases()) {
    const util::AliasTable fused(w);
    const TwoArrayAlias ref(w);
    sim::RngStream rng_fused(2026, 7);
    sim::RngStream rng_ref(2026, 7);
    for (int k = 0; k < 4096; ++k) {
      const double a1 = rng_fused.uniform();
      const double a2 = rng_fused.uniform();
      const double b1 = rng_ref.uniform();
      const double b2 = rng_ref.uniform();
      ASSERT_EQ(a1, b1);
      const std::size_t got = fused.sample(a1, a2);
      ASSERT_EQ(got, ref.sample(b1, b2)) << "draw " << k;
      ASSERT_GT(w[got], 0.0) << "sampled a zero-weight index";
    }
  }
}

// --- lane-batched Erlang kernels ------------------------------------------

TEST(ErlangBatch, ErlangBMatchesScalarBitwise) {
  std::vector<unsigned> m;
  std::vector<double> a;
  for (unsigned mi : {1u, 2u, 3u, 8u, 64u, 500u}) {
    for (double rho : {0.0, 1e-12, 1e-6, 0.1, 0.5, 0.9, 0.99, 0.999999}) {
      m.push_back(mi);
      a.push_back(static_cast<double>(mi) * rho);
    }
  }
  std::vector<double> b(m.size());
  num::erlang_b_batch(m, a, b);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(b[i], num::erlang_b(m[i], a[i])) << "m=" << m[i] << " a=" << a[i];
  }
}

TEST(ErlangBatch, DerivsMatchScalarAcrossRegimes) {
  std::vector<unsigned> m;
  std::vector<double> rho;
  // Regime sweep: tiny rho, moderate, near saturation, and large m —
  // every combination must match the scalar kernel to <= 1e-14 relative
  // (in practice bitwise: same recurrence, same epilogue order).
  for (unsigned mi : {1u, 2u, 3u, 5u, 8u, 16u, 64u, 200u, 500u}) {
    for (double r : {0.0, 1e-14, 1e-9, 1e-4, 0.05, 0.3, 0.5, 0.7, 0.9, 0.97, 0.999, 0.999999}) {
      m.push_back(mi);
      rho.push_back(r);
    }
  }
  std::vector<double> c(m.size());
  std::vector<double> dc(m.size());
  std::vector<double> d2c(m.size());
  num::erlang_c_derivs_batch(m, rho, c, dc, d2c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    const num::ErlangCDerivs s = num::erlang_c_derivs(m[i], rho[i]);
    EXPECT_EQ(c[i], s.c) << "m=" << m[i] << " rho=" << rho[i];
    EXPECT_EQ(dc[i], s.dc) << "m=" << m[i] << " rho=" << rho[i];
    EXPECT_EQ(d2c[i], s.d2c) << "m=" << m[i] << " rho=" << rho[i];
    if (std::abs(s.d2c) > 0.0) {
      EXPECT_LE(std::abs(d2c[i] - s.d2c) / std::abs(s.d2c), 1e-14);
    }
  }
}

// Every batch length around the lane width: the tail block must carry
// partially-filled lanes without disturbing the live ones.
TEST(ErlangBatch, TailLanesExact) {
  for (std::size_t n = 1; n <= 2 * num::kErlangBatchLanes + 3; ++n) {
    std::vector<unsigned> m(n);
    std::vector<double> rho(n);
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = static_cast<unsigned>(1 + (7 * i) % 93);
      rho[i] = 0.97 * static_cast<double>(i + 1) / static_cast<double>(n + 1);
    }
    std::vector<double> c(n), dc(n), d2c(n);
    num::erlang_c_derivs_batch(m, rho, c, dc, d2c);
    for (std::size_t i = 0; i < n; ++i) {
      const num::ErlangCDerivs s = num::erlang_c_derivs(m[i], rho[i]);
      EXPECT_EQ(c[i], s.c) << "n=" << n << " i=" << i;
      EXPECT_EQ(dc[i], s.dc) << "n=" << n << " i=" << i;
      EXPECT_EQ(d2c[i], s.d2c) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ErlangBatch, ValidationMatchesScalarContract) {
  std::vector<double> out(2), out2(2), out3(2);
  const std::vector<unsigned> m{4, 4};
  EXPECT_THROW(num::erlang_c_derivs_batch(std::vector<unsigned>{4, 0},
                                          std::vector<double>{0.5, 0.5}, out, out2, out3),
               std::invalid_argument);
  EXPECT_THROW(
      num::erlang_c_derivs_batch(m, std::vector<double>{0.5, 1.0}, out, out2, out3),
      std::invalid_argument);
  EXPECT_THROW(
      num::erlang_c_derivs_batch(m, std::vector<double>{0.5, -0.1}, out, out2, out3),
      std::invalid_argument);
  EXPECT_THROW(num::erlang_c_derivs_batch(
                   m, std::vector<double>{0.5, std::nan("")}, out, out2, out3),
               std::invalid_argument);
  EXPECT_THROW(
      num::erlang_c_derivs_batch(m, std::vector<double>{0.5}, out, out2, out3),
      std::invalid_argument);
  EXPECT_THROW(num::erlang_b_batch(m, std::vector<double>{1.0, -1.0}, out),
               std::invalid_argument);
}

// --- batched Lagrange marginals -------------------------------------------

std::vector<queue::BladeQueue> mixed_queues() {
  std::vector<queue::BladeQueue> qs;
  qs.emplace_back(4, 0.5, 1.0, queue::Discipline::Fcfs);
  qs.emplace_back(2, 0.8, 0.4, queue::Discipline::Fcfs, 2.0);
  qs.emplace_back(8, 0.25, 3.0, queue::Discipline::SpecialPriority);
  qs.emplace_back(1, 1.0, 0.0, queue::Discipline::Fcfs);
  qs.emplace_back(16, 0.1, 10.0, queue::Discipline::SpecialPriority, 0.5);
  qs.emplace_back(3, 0.6, 0.0, queue::Discipline::Fcfs);
  qs.emplace_back(6, 0.3, 2.0, queue::Discipline::Fcfs);
  qs.emplace_back(5, 0.4, 1.5, queue::Discipline::SpecialPriority);
  qs.emplace_back(12, 0.2, 5.0, queue::Discipline::Fcfs);  // > one lane block
  return qs;
}

TEST(BatchMarginals, MatchesScalarBitwise) {
  const auto qs = mixed_queues();
  for (double load : {1e-6, 0.2, 0.5, 0.8, 0.95}) {
    std::vector<double> lam(qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) lam[i] = load * qs[i].max_generic_rate();
    std::vector<double> g(qs.size());
    queue::batch_lagrange_marginal(qs, lam, g);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(g[i], qs[i].lagrange_marginal(lam[i])) << "i=" << i << " load=" << load;
    }
  }
}

TEST(BatchMarginals, DerivativeFormMatchesScalarBitwise) {
  const auto qs = mixed_queues();
  for (double load : {1e-6, 0.2, 0.5, 0.8, 0.95, 0.999}) {
    std::vector<double> lam(qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) lam[i] = load * qs[i].max_generic_rate();
    std::vector<double> g(qs.size());
    std::vector<double> dg(qs.size());
    queue::batch_lagrange_marginal_with_derivative(qs, lam, g, dg);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const auto [sg, sdg] = qs[i].lagrange_marginal_with_derivative(lam[i]);
      EXPECT_EQ(g[i], sg) << "i=" << i << " load=" << load;
      EXPECT_EQ(dg[i], sdg) << "i=" << i << " load=" << load;
    }
  }
}

TEST(BatchMarginals, OneQueueOverloadMatchesScalar) {
  const queue::BladeQueue q(8, 0.25, 2.0, queue::Discipline::Fcfs);
  std::vector<double> lam;
  for (int k = 0; k <= 40; ++k) {
    lam.push_back(q.max_generic_rate() * 0.999 * static_cast<double>(k) / 40.0);
  }
  std::vector<double> g(lam.size());
  std::vector<double> dg(lam.size());
  queue::batch_lagrange_marginal(q, lam, g);
  for (std::size_t i = 0; i < lam.size(); ++i) EXPECT_EQ(g[i], q.lagrange_marginal(lam[i]));
  queue::batch_lagrange_marginal_with_derivative(q, lam, g, dg);
  for (std::size_t i = 0; i < lam.size(); ++i) {
    const auto [sg, sdg] = q.lagrange_marginal_with_derivative(lam[i]);
    EXPECT_EQ(g[i], sg);
    EXPECT_EQ(dg[i], sdg);
  }
}

TEST(BatchMarginals, SizeMismatchThrows) {
  const auto qs = mixed_queues();
  std::vector<double> lam(qs.size() - 1, 0.1);
  std::vector<double> g(qs.size());
  EXPECT_THROW(queue::batch_lagrange_marginal(qs, lam, g), std::invalid_argument);
}

// --- certified marginal surrogate -----------------------------------------

// The certified bound must be honest on sweeps far denser than the
// certification grid: 20k evaluation points against <= 432 probe points.
TEST(MarginalSurrogate, CertifiedBoundIsHonest) {
  std::vector<queue::BladeQueue> qs;
  qs.emplace_back(8, 0.25, 1.0, queue::Discipline::Fcfs);
  qs.emplace_back(2, 0.8, 0.4, queue::Discipline::Fcfs);
  qs.emplace_back(4, 0.5, 2.0, queue::Discipline::SpecialPriority);
  qs.emplace_back(64, 0.05, 100.0, queue::Discipline::Fcfs);
  for (const auto& q : qs) {
    const opt::MarginalSurrogate s(q);
    ASSERT_GT(s.error_bound(), 0.0);
    ASSERT_GT(s.hi(), s.lo());
    const int kPoints = 20000;
    double worst = 0.0;
    std::vector<double> xs(kPoints + 1);
    for (int k = 0; k <= kPoints; ++k) {
      xs[k] = s.lo() + (s.hi() - s.lo()) * static_cast<double>(k) / kPoints;
    }
    std::vector<double> exact(xs.size());
    queue::batch_lagrange_marginal(q, xs, exact);
    for (std::size_t k = 0; k < xs.size(); ++k) {
      const auto v = s.eval_with_bound(xs[k]);
      const double err = std::abs(v.g - exact[k]);
      // The segment-local bound must hold point by point...
      ASSERT_LE(err, v.bound) << "m=" << q.blades() << " x=" << xs[k];
      ASSERT_LE(v.bound, s.error_bound());
      worst = std::max(worst, err);
    }
    // ...and the global bound over the whole sweep.
    EXPECT_LE(worst, s.error_bound()) << "m=" << q.blades();
  }
}

TEST(MarginalSurrogate, DomainAndOptionValidation) {
  const queue::BladeQueue q(4, 0.5, 1.0, queue::Discipline::Fcfs);
  const opt::MarginalSurrogate s(q);
  EXPECT_TRUE(s.in_domain(0.0));
  EXPECT_FALSE(s.in_domain(-1e-9));
  EXPECT_FALSE(s.in_domain(q.max_generic_rate()));
  EXPECT_THROW((void)s.eval(q.max_generic_rate()), std::domain_error);
  EXPECT_THROW((void)s.eval(-1e-9), std::domain_error);

  opt::MarginalSurrogate::Options bad;
  bad.segments = 1;
  EXPECT_THROW(opt::MarginalSurrogate(q, bad), std::invalid_argument);
  bad = {};
  bad.certify_samples = 0;
  EXPECT_THROW(opt::MarginalSurrogate(q, bad), std::invalid_argument);
  bad = {};
  bad.safety_factor = 0.5;
  EXPECT_THROW(opt::MarginalSurrogate(q, bad), std::invalid_argument);
  bad = {};
  bad.domain_margin = 1.0;
  EXPECT_THROW(opt::MarginalSurrogate(q, bad), std::invalid_argument);
}

TEST(MarginalCacheUnit, LifecycleAndStats) {
  opt::MarginalCache cache;
  EXPECT_FALSE(cache.valid());
  EXPECT_FALSE(cache.eval(0, 0.1).has_value());

  std::vector<queue::BladeQueue> qs;
  qs.emplace_back(4, 0.5, 1.0, queue::Discipline::Fcfs);
  qs.emplace_back(2, 0.8, 0.2, queue::Discipline::Fcfs);
  cache.configure(qs);
  ASSERT_TRUE(cache.valid());
  ASSERT_EQ(cache.size(), 2u);

  const double x = 0.25 * qs[0].max_generic_rate();
  const auto e = cache.eval(0, x);
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->g, qs[0].lagrange_marginal(x), e->bound);
  EXPECT_EQ(cache.stats().builds, 1u);  // lazily built only server 0
  EXPECT_EQ(cache.stats().hits, 1u);

  // Past the certified domain: nullopt, counted.
  EXPECT_FALSE(cache.eval(1, qs[1].max_generic_rate()).has_value());
  EXPECT_EQ(cache.stats().out_of_domain, 1u);

  // Exact fallthrough path equals the scalar chain bitwise.
  std::vector<double> lam{x, 0.1 * qs[1].max_generic_rate()};
  std::vector<double> g(2);
  cache.exact(lam, g);
  EXPECT_EQ(g[0], qs[0].lagrange_marginal(lam[0]));
  EXPECT_EQ(g[1], qs[1].lagrange_marginal(lam[1]));

  cache.invalidate();
  EXPECT_FALSE(cache.valid());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.invalidate();  // already invalid: not double-counted
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_FALSE(cache.eval(0, x).has_value());
  EXPECT_THROW(cache.exact(lam, g), std::logic_error);
}

// --- controller marginal-drift mode ---------------------------------------

runtime::ControllerConfig drift_config() {
  runtime::ControllerConfig cfg;
  cfg.half_life = 2.0;
  cfg.check_interval = 8;
  cfg.min_arrivals = 8;
  cfg.initial_lambda = model::paper_example_lambda();
  cfg.marginal_drift = true;
  return cfg;
}

TEST(MarginalDriftMode, ConfigValidation) {
  const auto cluster = model::paper_example_cluster();
  auto cfg = drift_config();
  cfg.marginal_cache.segments = 1;
  EXPECT_THROW(runtime::Controller(cluster, cfg), std::invalid_argument);
  cfg = drift_config();
  cfg.marginal_cache.safety_factor = 0.0;
  EXPECT_THROW(runtime::Controller(cluster, cfg), std::invalid_argument);
  cfg = drift_config();
  cfg.marginal_cache.certify_samples = 0;
  EXPECT_THROW(runtime::Controller(cluster, cfg), std::invalid_argument);
  cfg = drift_config();
  cfg.marginal_cache.domain_margin = 1.5;
  EXPECT_THROW(runtime::Controller(cluster, cfg), std::invalid_argument);
}

TEST(MarginalDriftMode, StationaryLoadSettlesThroughTheCache) {
  const auto cluster = model::paper_example_cluster();
  runtime::Controller ctrl(cluster, drift_config());
  const double lambda = model::paper_example_lambda();
  sim::RngStream rng(11, 0);
  double t = 0.0;
  for (int k = 0; k < 2000; ++k) ctrl.on_generic_arrival(t += 1.0 / lambda, rng.uniform());

  const auto& st = ctrl.stats();
  // The published split stays optimal for a stationary load, so drift
  // checks must keep settling via the surrogate, not re-solving.
  EXPECT_GT(st.mcache_hits, 0u);
  EXPECT_GT(st.skipped_by_hysteresis, 0u);
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Optimal);
  EXPECT_GT(ctrl.marginal_cache_stats().builds, 0u);
  EXPECT_LT(st.resolves, 12u) << "stationary load should not keep re-solving";
}

TEST(MarginalDriftMode, LoadShiftTriggersResolveAndInvalidation) {
  const auto cluster = model::paper_example_cluster();
  runtime::Controller ctrl(cluster, drift_config());
  sim::RngStream rng(12, 0);
  double t = 0.0;
  const double low = 0.3 * cluster.max_generic_rate();
  for (int k = 0; k < 1000; ++k) ctrl.on_generic_arrival(t += 1.0 / low, rng.uniform());
  const std::uint64_t resolves_before = ctrl.stats().resolves;
  const std::uint64_t invalidations_before = ctrl.marginal_cache_stats().invalidations;

  const double high = 0.85 * cluster.max_generic_rate();
  for (int k = 0; k < 2000; ++k) ctrl.on_generic_arrival(t += 1.0 / high, rng.uniform());
  EXPECT_GT(ctrl.stats().resolves, resolves_before)
      << "a 3x load shift must defeat the marginal-drift hysteresis";
  // Every re-solve starts a new epoch: the surrogates fitted to the old
  // split must have been dropped.
  EXPECT_GT(ctrl.marginal_cache_stats().invalidations, invalidations_before);
}

TEST(MarginalDriftMode, TopologyChangeInvalidatesTheCache) {
  const auto cluster = model::paper_example_cluster();
  runtime::Controller ctrl(cluster, drift_config());
  const double lambda = 0.4 * cluster.max_generic_rate();
  sim::RngStream rng(13, 0);
  double t = 0.0;
  for (int k = 0; k < 500; ++k) ctrl.on_generic_arrival(t += 1.0 / lambda, rng.uniform());
  ASSERT_GT(ctrl.marginal_cache_stats().builds, 0u);
  const std::uint64_t invalidations_before = ctrl.marginal_cache_stats().invalidations;
  ctrl.on_failure(t += 1e-3, 0);
  EXPECT_GT(ctrl.marginal_cache_stats().invalidations, invalidations_before);
  // And the criterion keeps working over the surviving topology.
  for (int k = 0; k < 500; ++k) ctrl.on_generic_arrival(t += 1.0 / lambda, rng.uniform());
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Optimal);
}

// --- DispatchShard --------------------------------------------------------

runtime::ControllerConfig quiet_config() {
  runtime::ControllerConfig cfg;
  cfg.half_life = 2.0;
  cfg.initial_lambda = model::paper_example_lambda();
  return cfg;
}

TEST(DispatchShard, ConfigValidation) {
  const auto cluster = model::paper_example_cluster();
  const runtime::Controller ctrl(cluster, quiet_config());
  runtime::DispatchShardConfig cfg;
  cfg.refresh_interval = 0;
  EXPECT_THROW(runtime::DispatchShard(ctrl, cfg), std::invalid_argument);
}

TEST(DispatchShard, DeterministicAcrossInstances) {
  const auto cluster = model::paper_example_cluster();
  const runtime::Controller ctrl(cluster, quiet_config());
  runtime::DispatchShardConfig cfg;
  cfg.seed = 99;
  cfg.stream = 3;
  runtime::DispatchShard a(ctrl, cfg);
  runtime::DispatchShard b(ctrl, cfg);
  for (int k = 0; k < 10000; ++k) {
    const std::size_t ra = a.route();
    ASSERT_EQ(ra, b.route()) << "draw " << k;
    ASSERT_LT(ra, cluster.size());
  }
  EXPECT_EQ(a.routed(), 10000u);
  EXPECT_EQ(a.refreshes(), b.refreshes());
}

TEST(DispatchShard, DistinctStreamsDecorrelate) {
  const auto cluster = model::paper_example_cluster();
  const runtime::Controller ctrl(cluster, quiet_config());
  runtime::DispatchShardConfig cfg;
  cfg.seed = 99;
  runtime::DispatchShard a(ctrl, cfg);
  cfg.stream = 1;
  runtime::DispatchShard b(ctrl, cfg);
  int differ = 0;
  for (int k = 0; k < 4096; ++k) differ += a.route() != b.route() ? 1 : 0;
  EXPECT_GT(differ, 0) << "streams 0 and 1 routed identically";
}

// sample_n must be draw-for-draw the same machine as route(): same RNG
// consumption, same refresh points, regardless of how the batch splits.
TEST(DispatchShard, SampleNMatchesRouteExactly) {
  const auto cluster = model::paper_example_cluster();
  const runtime::Controller ctrl(cluster, quiet_config());
  runtime::DispatchShardConfig cfg;
  cfg.seed = 7;
  cfg.refresh_interval = 64;
  runtime::DispatchShard one(ctrl, cfg);
  runtime::DispatchShard batched(ctrl, cfg);

  std::vector<std::size_t> expected;
  for (int k = 0; k < 3000; ++k) expected.push_back(one.route());

  std::vector<std::size_t> got;
  const std::size_t chunks[] = {1, 7, 64, 128, 300, 2500};
  for (std::size_t c : chunks) {
    std::vector<std::size_t> buf(c);
    batched.sample_n(buf);
    got.insert(got.end(), buf.begin(), buf.end());
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], expected[i]) << "i=" << i;
  EXPECT_EQ(batched.routed(), one.routed());
  EXPECT_EQ(batched.refreshes(), one.refreshes());
}

TEST(DispatchShard, RefreshAccountingAmortizes) {
  const auto cluster = model::paper_example_cluster();
  const runtime::Controller ctrl(cluster, quiet_config());
  runtime::DispatchShardConfig cfg;
  cfg.refresh_interval = 64;
  runtime::DispatchShard shard(ctrl, cfg);
  for (int k = 0; k < 1000; ++k) (void)shard.route();
  // ceil(1000 / 64) = 16 snapshot acquisitions for 1000 routes.
  EXPECT_EQ(shard.refreshes(), 16u);
  shard.invalidate_snapshot();
  (void)shard.route();
  EXPECT_EQ(shard.refreshes(), 17u);
}

TEST(DispatchShard, BlackoutRoutesNposThenRecovers) {
  const auto cluster = model::paper_example_cluster();
  runtime::Controller ctrl(cluster, quiet_config());
  double t = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) ctrl.on_failure(t += 1e-3, i);
  ASSERT_EQ(ctrl.mode(), runtime::Mode::Blackout);

  runtime::DispatchShardConfig cfg;
  cfg.refresh_interval = 8;
  runtime::DispatchShard shard(ctrl, cfg);
  for (int k = 0; k < 20; ++k) EXPECT_EQ(shard.route(), runtime::DispatchShard::npos);
  EXPECT_EQ(shard.snapshot(), nullptr);

  ctrl.on_recovery(t += 1e-3, 1);
  shard.invalidate_snapshot();
  for (int k = 0; k < 20; ++k) EXPECT_EQ(shard.route(), 1u);  // only survivor
}

// Degraded-MODE transitions must not wait out the refresh interval: the
// controller bumps its publish epoch on every mode change, and route()
// re-checks the epoch even mid-interval. With a practically-infinite
// refresh interval, a shard that kept serving its pre-blackout snapshot
// would route to dead servers for ~a million draws — the bounded
// staleness contract (staleness <= refresh_interval) only covers
// same-mode republications, never mode flips.
TEST(DispatchShard, ModeTransitionInvalidatesSnapshotImmediately) {
  const auto cluster = model::paper_example_cluster();
  runtime::Controller ctrl(cluster, quiet_config());
  runtime::DispatchShardConfig cfg;
  cfg.refresh_interval = 1u << 20;
  runtime::DispatchShard shard(ctrl, cfg);
  ASSERT_NE(shard.route(), runtime::DispatchShard::npos);  // healthy table cached

  double t = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) ctrl.on_failure(t += 1e-3, i);
  ASSERT_EQ(ctrl.mode(), runtime::Mode::Blackout);
  // No invalidate_snapshot(), no refresh budget spent: the epoch bump
  // alone must retire the stale table on the very next draw.
  EXPECT_EQ(shard.route(), runtime::DispatchShard::npos);

  ctrl.on_recovery(t += 1e-3, 2);  // Blackout -> Fallback mode transition
  for (int k = 0; k < 20; ++k) EXPECT_EQ(shard.route(), 2u);
}

// A republished table reaches the shard within refresh_interval draws.
TEST(DispatchShard, PicksUpRepublishedTable) {
  const auto cluster = model::paper_example_cluster();
  runtime::Controller ctrl(cluster, quiet_config());
  runtime::DispatchShardConfig cfg;
  cfg.refresh_interval = 32;
  runtime::DispatchShard shard(ctrl, cfg);
  (void)shard.route();  // acquire the pre-failure table

  ctrl.on_failure(0.1, 0);  // re-solve + republish without server 0
  std::vector<std::size_t> tail;
  for (int k = 0; k < 512; ++k) tail.push_back(shard.route());
  for (std::size_t k = cfg.refresh_interval; k < tail.size(); ++k) {
    ASSERT_NE(tail[k], 0u) << "stale snapshot outlived the refresh interval";
  }
}

TEST(FastRngUnit, UniformInRangeAndStreamsDiffer) {
  runtime::FastRng a(5, 0);
  runtime::FastRng b(5, 1);
  int differ = 0;
  for (int k = 0; k < 10000; ++k) {
    const double u = a.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    differ += a.next() != b.next() ? 1 : 0;
  }
  EXPECT_GT(differ, 9000);
}

// --- concurrency: K routing threads vs a live publisher -------------------
// Rides the fast label into the TSan preset: every weights() load a shard
// refresh performs races against the control thread's table swaps and
// topology churn; TSan must see the slot's release/acquire edges.
TEST(DispatchShardConcurrency, RoutingThreadsVsPublishingController) {
  const auto cluster = model::paper_example_cluster();
  runtime::Controller ctrl(cluster, quiet_config());
  const std::size_t n = cluster.size();

  constexpr int kThreads = 4;
  constexpr int kRoutesPerThread = 40000;
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> routers;
  routers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    routers.emplace_back([&, w] {
      runtime::DispatchShardConfig cfg;
      cfg.seed = 17;
      cfg.stream = static_cast<std::uint64_t>(w);
      cfg.refresh_interval = 16;  // refresh often: maximize slot contention
      runtime::DispatchShard shard(ctrl, cfg);
      std::vector<std::size_t> buf(128);
      int routed = 0;
      while (routed < kRoutesPerThread) {
        shard.sample_n(buf);
        for (std::size_t idx : buf) {
          if (idx >= n && idx != runtime::DispatchShard::npos) bad.fetch_add(1);
        }
        routed += static_cast<int>(buf.size());
      }
    });
  }

  // Control thread: continuous republishes plus full failure/recovery
  // churn (tables of changing support, occasional blackout).
  double t = 0.0;
  for (int round = 0; round < 60; ++round) {
    ctrl.resolve_now(t += 0.5);
    const std::size_t victim = static_cast<std::size_t>(round) % n;
    ctrl.on_failure(t += 0.5, victim);
    if (round % 7 == 0) {
      for (std::size_t i = 0; i < n; ++i) ctrl.on_failure(t += 1e-3, i);  // blackout
    }
    for (std::size_t i = 0; i < n; ++i) ctrl.on_recovery(t += 1e-3, i);
  }
  for (auto& th : routers) th.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Optimal);
}

}  // namespace
