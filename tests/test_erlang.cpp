// Erlang B/C kernels: known values, stability at large m, agreement with
// the paper's textbook formulas, and analytic-vs-numeric derivatives.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/differentiation.hpp"
#include "numerics/erlang.hpp"
#include "numerics/special.hpp"

namespace {

using blade::num::erlang_b;
using blade::num::erlang_c;
using blade::num::erlang_c_drho;
using blade::num::erlang_c_reference;
using blade::num::mmm_p0;
using blade::num::mmm_p0_drho;

TEST(ErlangB, SingleServerClosedForm) {
  // B(1, a) = a / (1 + a).
  for (double a : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(erlang_b(1, a), a / (1.0 + a), 1e-14);
  }
}

TEST(ErlangB, TwoServersClosedForm) {
  // B(2, a) = a^2 / (2 + 2a + a^2).
  for (double a : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(erlang_b(2, a), a * a / (2.0 + 2.0 * a + a * a), 1e-14);
  }
}

TEST(ErlangB, ZeroLoad) { EXPECT_DOUBLE_EQ(erlang_b(5, 0.0), 0.0); }

TEST(ErlangB, DecreasesWithServers) {
  const double a = 8.0;
  double prev = erlang_b(1, a);
  for (unsigned m = 2; m <= 40; ++m) {
    const double cur = erlang_b(m, a);
    EXPECT_LT(cur, prev) << "m=" << m;
    prev = cur;
  }
}

TEST(ErlangC, SingleServerEqualsRho) {
  // For M/M/1 the probability of queueing is rho.
  for (double rho : {0.05, 0.3, 0.6, 0.9, 0.99}) {
    EXPECT_NEAR(erlang_c(1, rho), rho, 1e-13);
  }
}

TEST(ErlangC, ZeroAtZeroLoad) {
  for (unsigned m : {1u, 2u, 8u, 64u}) {
    EXPECT_DOUBLE_EQ(erlang_c(m, 0.0), 0.0);
  }
}

TEST(ErlangC, BoundedByOne) {
  for (unsigned m : {1u, 2u, 5u, 14u, 100u}) {
    for (double rho : {0.1, 0.5, 0.9, 0.999}) {
      const double c = erlang_c(m, rho);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST(ErlangC, MatchesReferenceImplementation) {
  for (unsigned m : {1u, 2u, 3u, 6u, 10u, 14u, 25u, 60u}) {
    for (double rho : {0.05, 0.2, 0.5, 0.75, 0.95}) {
      EXPECT_NEAR(erlang_c(m, rho), erlang_c_reference(m, rho), 1e-11)
          << "m=" << m << " rho=" << rho;
    }
  }
}

TEST(ErlangC, StableForVeryLargeM) {
  // The recurrence must survive sizes where factorials overflow.
  for (unsigned m : {500u, 2000u, 10000u}) {
    for (double rho : {0.5, 0.9, 0.99}) {
      const double c = erlang_c(m, rho);
      EXPECT_TRUE(std::isfinite(c));
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST(ErlangC, IncreasingInRho) {
  for (unsigned m : {1u, 4u, 14u}) {
    double prev = erlang_c(m, 0.01);
    for (double rho = 0.05; rho < 0.99; rho += 0.02) {
      const double cur = erlang_c(m, rho);
      EXPECT_GT(cur, prev) << "m=" << m << " rho=" << rho;
      prev = cur;
    }
  }
}

TEST(ErlangCDerivative, MatchesNumericDifferentiation) {
  for (unsigned m : {1u, 2u, 5u, 10u, 14u, 40u, 200u}) {
    for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const auto f = [m](double r) { return erlang_c(m, r); };
      const double numeric = blade::num::richardson_derivative(f, rho);
      const double analytic = erlang_c_drho(m, rho);
      EXPECT_NEAR(analytic, numeric, 1e-6 * std::max(1.0, std::abs(numeric)))
          << "m=" << m << " rho=" << rho;
    }
  }
}

TEST(ErlangCDerivative, SingleServerIsOne) {
  // C(1, rho) = rho, so the derivative is exactly 1.
  for (double rho : {0.0, 0.2, 0.5, 0.9}) {
    EXPECT_NEAR(erlang_c_drho(1, rho), 1.0, 1e-10);
  }
}

TEST(MMmP0, SingleServer) {
  // p0 = 1 - rho for M/M/1.
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(mmm_p0(1, rho), 1.0 - rho, 1e-12);
  }
}

TEST(MMmP0, SumsStateProbabilitiesToOne) {
  // Sum p_k over a long range must approach 1.
  const unsigned m = 6;
  const double rho = 0.7;
  const double a = m * rho;
  const double p0 = mmm_p0(m, rho);
  double total = 0.0;
  for (unsigned k = 0; k <= 400; ++k) {
    double pk;
    if (k <= m) {
      pk = p0 * std::exp(k * std::log(a) - blade::num::log_factorial(k));
    } else {
      pk = p0 * std::exp(m * std::log(static_cast<double>(m)) + k * std::log(rho) -
                         blade::num::log_factorial(m));
    }
    total += pk;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MMmP0Derivative, MatchesNumericDifferentiation) {
  for (unsigned m : {1u, 2u, 5u, 14u}) {
    for (double rho : {0.2, 0.5, 0.8}) {
      const auto f = [m](double r) { return mmm_p0(m, r); };
      const double numeric = blade::num::richardson_derivative(f, rho);
      const double analytic = mmm_p0_drho(m, rho);
      EXPECT_NEAR(analytic, numeric, 1e-6 * std::max(1.0, std::abs(numeric)))
          << "m=" << m << " rho=" << rho;
    }
  }
}

TEST(ErlangValidation, RejectsBadArguments) {
  EXPECT_THROW((void)erlang_c(0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)erlang_c(4, 1.0), std::invalid_argument);
  EXPECT_THROW((void)erlang_c(4, -0.1), std::invalid_argument);
  EXPECT_THROW((void)erlang_b(3, -1.0), std::invalid_argument);
}

}  // namespace
