// Unit tests for the solver hot path: the derivative-returning Erlang
// kernel, the analytic marginal derivative, the warm-bracketed Newton
// inner solve, workspace-threaded outer solves, and the batched
// optimize_many/optimize_chain layer (including the determinism
// contract: results never depend on the pool's thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/batch.hpp"
#include "core/objective.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "numerics/erlang.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "support/generators.hpp"

namespace {

using namespace blade;
using testsupport::Instance;
using testsupport::make_instance;
using testsupport::Regime;
using queue::Discipline;

// --- Erlang kernel -------------------------------------------------------

TEST(ErlangCDerivs, ValueMatchesErlangC) {
  for (unsigned m : {1u, 2u, 5u, 16u, 64u}) {
    for (double rho : {0.0, 0.05, 0.3, 0.7, 0.95, 0.999}) {
      const auto k = num::erlang_c_derivs(m, rho);
      EXPECT_NEAR(k.c, num::erlang_c(m, rho), 1e-13) << "m=" << m << " rho=" << rho;
      EXPECT_NEAR(k.dc, num::erlang_c_drho(m, rho), 1e-9 * (1.0 + std::abs(k.dc)))
          << "m=" << m << " rho=" << rho;
    }
  }
}

TEST(ErlangCDerivs, SecondDerivativeMatchesCentralDifference) {
  for (unsigned m : {1u, 2u, 4u, 12u, 48u}) {
    for (double rho : {0.1, 0.35, 0.6, 0.85, 0.97}) {
      const double h = 1e-5;
      const double fd =
          (num::erlang_c_drho(m, rho + h) - num::erlang_c_drho(m, rho - h)) / (2.0 * h);
      const auto k = num::erlang_c_derivs(m, rho);
      EXPECT_NEAR(k.d2c, fd, 1e-5 * (1.0 + std::abs(fd))) << "m=" << m << " rho=" << rho;
    }
  }
}

TEST(ErlangCDerivs, ZeroLoadLimits) {
  // C(m, rho) ~ rho^m near 0: C(1,.) has slope 1, C(2,.) curvature 4
  // (C = 2 rho^2 / (1 + rho) to leading order), higher m vanish.
  const auto k1 = num::erlang_c_derivs(1, 0.0);
  EXPECT_DOUBLE_EQ(k1.c, 0.0);
  EXPECT_DOUBLE_EQ(k1.dc, 1.0);
  const auto k2 = num::erlang_c_derivs(2, 0.0);
  EXPECT_DOUBLE_EQ(k2.dc, 0.0);
  EXPECT_NEAR(k2.d2c, 4.0, 1e-12);
  const auto k3 = num::erlang_c_derivs(3, 0.0);
  EXPECT_DOUBLE_EQ(k3.dc, 0.0);
  EXPECT_DOUBLE_EQ(k3.d2c, 0.0);
}

// --- marginal derivative -------------------------------------------------

TEST(MarginalDerivative, MatchesMarginalAndCentralDifference) {
  const auto cluster = model::paper_example_cluster();
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    for (double scv : {1.0, 2.5}) {
      const opt::ResponseTimeObjective obj(cluster, d, /*lambda_total=*/5.0, scv);
      for (std::size_t i = 0; i < obj.size(); ++i) {
        const double sup = obj.rate_bound(i);
        for (double frac : {0.05, 0.3, 0.6, 0.9}) {
          const double rate = frac * sup;
          const auto [g, dg] = obj.marginal_with_derivative(i, rate);
          EXPECT_NEAR(g, obj.marginal(i, rate), 1e-12 * (1.0 + std::abs(g)))
              << "i=" << i << " frac=" << frac;
          const double h = 1e-6 * sup;
          const double fd = (obj.marginal(i, rate + h) - obj.marginal(i, rate - h)) / (2.0 * h);
          EXPECT_NEAR(dg, fd, 1e-4 * (1.0 + std::abs(fd)))
              << "i=" << i << " frac=" << frac << " scv=" << scv
              << " d=" << queue::to_string(d);
          EXPECT_GT(dg, 0.0);  // T' convex in lambda'_i
        }
      }
    }
  }
}

// --- warm-bracketed inner solve ------------------------------------------

class FindRateBracketed : public ::testing::Test {
 protected:
  FindRateBracketed()
      : solver_(model::paper_example_cluster(), Discipline::Fcfs),
        obj_(model::paper_example_cluster(), Discipline::Fcfs, 5.0) {}

  opt::LoadDistributionOptimizer solver_;
  opt::ResponseTimeObjective obj_;
};

TEST_F(FindRateBracketed, MatchesColdSolveFromValidBracket) {
  const double phi = 1.5;
  for (std::size_t i = 0; i < obj_.size(); ++i) {
    const double cold = solver_.find_rate(obj_, i, phi);
    if (cold <= 0.0) continue;
    const double warm =
        solver_.find_rate_bracketed(obj_, i, phi, 0.5 * cold, std::min(2.0 * cold,
                                    obj_.rate_bound(i)));
    EXPECT_NEAR(warm, cold, 1e-9 * (1.0 + cold)) << "server " << i;
  }
}

TEST_F(FindRateBracketed, CollapsedBracketCostsZeroEvaluations) {
  const double phi = 1.5;
  const double cold = solver_.find_rate(obj_, 0, phi);
  ASSERT_GT(cold, 0.0);
  long evals = 0;
  const double eps = 1e-13;  // < rate_tolerance
  const double r = solver_.find_rate_bracketed(obj_, 0, phi, cold - eps, cold + eps, &evals);
  EXPECT_EQ(evals, 0);
  EXPECT_NEAR(r, cold, 1e-12);
}

TEST_F(FindRateBracketed, MonotoneInPhi) {
  double prev = 0.0;
  for (double phi : {0.8, 1.0, 1.4, 2.0, 3.5}) {
    const double r = solver_.find_rate(obj_, 0, phi);
    EXPECT_GE(r, prev - 1e-12) << "phi=" << phi;
    prev = r;
  }
}

TEST_F(FindRateBracketed, UndershootingWarmBoundRecovers) {
  // A stale upper bound below the true root must not be trusted: the
  // solve resumes the doubling expansion and still lands on the root.
  const double phi = 2.0;
  const double cold = solver_.find_rate(obj_, 0, phi);
  ASSERT_GT(cold, 0.0);
  const double warm = solver_.find_rate_bracketed(obj_, 0, phi, 0.0, 0.5 * cold);
  EXPECT_NEAR(warm, cold, 1e-9 * (1.0 + cold));
}

// --- workspace-threaded outer solves -------------------------------------

TEST(Workspace, ReusedWorkspaceMatchesFreshSolves) {
  for (auto [regime, d] : {std::pair{Regime::Random, Discipline::Fcfs},
                           std::pair{Regime::LargeServers, Discipline::SpecialPriority},
                           std::pair{Regime::NearSaturation, Discipline::Fcfs}}) {
    const Instance inst = make_instance(regime, 7, d);
    const opt::LoadDistributionOptimizer solver(inst.cluster, inst.discipline);
    opt::SolverWorkspace ws;
    const double lambda_max = inst.cluster.max_generic_rate();
    for (double frac : {0.2, 0.4, 0.6, 0.8, 0.85}) {
      const double lambda = frac * lambda_max;
      const auto warm = solver.optimize(lambda, ws);
      const auto cold = solver.optimize(lambda);
      EXPECT_NEAR(warm.response_time, cold.response_time,
                  1e-9 * (1.0 + cold.response_time))
          << inst.name << " frac=" << frac;
      ASSERT_EQ(warm.rates.size(), cold.rates.size());
      for (std::size_t i = 0; i < cold.rates.size(); ++i) {
        EXPECT_NEAR(warm.rates[i], cold.rates[i], 1e-5 * (1.0 + cold.rates[i]))
            << inst.name << " frac=" << frac << " server " << i;
      }
    }
    EXPECT_GT(ws.seed_phi(), 0.0);
  }
}

TEST(Workspace, WarmSweepIsCheaperThanColdSweep) {
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, Discipline::Fcfs);
  const auto grid = par::linspace(3.0, 9.0, 24);
  long cold_evals = 0;
  long warm_evals = 0;
  opt::SolverWorkspace ws;
  for (double lambda : grid) {
    cold_evals += solver.optimize(lambda).inner_evaluations;
    warm_evals += solver.optimize(lambda, ws).inner_evaluations;
  }
  // The chain shares brackets and the phi seed; anything less than ~25%
  // cheaper would mean the warm start stopped working.
  EXPECT_LT(warm_evals, (3 * cold_evals) / 4)
      << "warm=" << warm_evals << " cold=" << cold_evals;
}

TEST(Workspace, ClearDropsTheSeed) {
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, Discipline::Fcfs);
  opt::SolverWorkspace ws;
  (void)solver.optimize(5.0, ws);
  ASSERT_GT(ws.seed_phi(), 0.0);
  ws.clear();
  EXPECT_LT(ws.seed_phi(), 0.0);
}

// --- batched solves ------------------------------------------------------

TEST(OptimizeMany, MatchesSequentialOptimize) {
  const Instance inst = make_instance(Regime::SpeedExtremes, 3, Discipline::Fcfs);
  const opt::LoadDistributionOptimizer solver(inst.cluster, inst.discipline);
  const auto grid =
      par::linspace(0.1 * inst.lambda, 0.9 * inst.cluster.max_generic_rate(), 33);
  par::ThreadPool pool(2);
  const auto batch = opt::optimize_many(solver, grid, pool);
  ASSERT_EQ(batch.size(), grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    const auto solo = solver.optimize(grid[k]);
    EXPECT_NEAR(batch[k].response_time, solo.response_time,
                1e-9 * (1.0 + solo.response_time))
        << "k=" << k;
  }
}

TEST(OptimizeMany, ThreadCountInvariant) {
  const Instance inst = make_instance(Regime::Random, 5, Discipline::SpecialPriority);
  const opt::LoadDistributionOptimizer solver(inst.cluster, inst.discipline);
  const auto grid =
      par::linspace(0.1 * inst.lambda, 0.9 * inst.cluster.max_generic_rate(), 40);
  par::ThreadPool one(1);
  par::ThreadPool four(4);
  const auto a = opt::optimize_many(solver, grid, one);
  const auto b = opt::optimize_many(solver, grid, four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].response_time, b[k].response_time) << "k=" << k;  // bitwise
    ASSERT_EQ(a[k].rates.size(), b[k].rates.size());
    for (std::size_t i = 0; i < a[k].rates.size(); ++i) {
      EXPECT_EQ(a[k].rates[i], b[k].rates[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(OptimizeMany, ChainEqualsSingleChunkBatch) {
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, Discipline::Fcfs);
  const auto grid = par::linspace(2.0, 9.0, 17);
  const auto chained = opt::optimize_chain(solver, grid);
  par::ThreadPool pool(3);
  opt::BatchOptions opts;
  opts.chunk = grid.size();  // one chunk == one chain
  const auto batch = opt::optimize_many(solver, grid, pool, opts);
  ASSERT_EQ(chained.size(), batch.size());
  for (std::size_t k = 0; k < chained.size(); ++k) {
    EXPECT_EQ(chained[k].response_time, batch[k].response_time) << "k=" << k;
  }
}

TEST(OptimizeMany, HeterogeneousRequestsResolvePerSolver) {
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer fcfs(cluster, Discipline::Fcfs);
  const opt::LoadDistributionOptimizer prio(cluster, Discipline::SpecialPriority);
  std::vector<opt::SolveRequest> reqs;
  for (double lambda : {4.0, 5.0, 6.0}) reqs.push_back({&fcfs, lambda});
  for (double lambda : {4.0, 5.0, 6.0}) reqs.push_back({&prio, lambda});
  par::ThreadPool pool(2);
  const auto sols = opt::optimize_many(reqs, pool);
  ASSERT_EQ(sols.size(), reqs.size());
  for (std::size_t k = 0; k < reqs.size(); ++k) {
    const auto solo = reqs[k].solver->optimize(reqs[k].lambda_total);
    EXPECT_NEAR(sols[k].response_time, solo.response_time, 1e-9 * (1.0 + solo.response_time))
        << "k=" << k;
  }
  // Priority waits dominate FCFS waits at equal lambda on this cluster.
  EXPECT_GT(sols[3].response_time, sols[0].response_time);
}

TEST(OptimizeMany, RejectsBadInput) {
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, Discipline::Fcfs);
  par::ThreadPool pool(1);
  opt::BatchOptions bad;
  bad.chunk = 0;
  const std::vector<double> grid{4.0};
  EXPECT_THROW((void)opt::optimize_many(solver, grid, pool, bad), std::invalid_argument);
  const std::vector<opt::SolveRequest> null_req{{nullptr, 4.0}};
  EXPECT_THROW((void)opt::optimize_many(null_req, pool), std::invalid_argument);
  opt::BatchOptions short_hints;
  short_hints.cost_hints = {1.0, 2.0};  // batch has 1 item
  EXPECT_THROW((void)opt::optimize_many(solver, grid, pool, short_hints),
               std::invalid_argument);
}

// Cost hints regroup the warm-start chains but solve the same problems:
// per-item results match the hint-free batch to solver tolerance, and
// with hints fixed the batch stays bitwise thread-count invariant (the
// cut is a pure function of (size, chunk, hints)).
TEST(OptimizeMany, CostHintsPreserveResultsAndDeterminism) {
  const Instance inst = make_instance(Regime::Random, 7, Discipline::Fcfs);
  const opt::LoadDistributionOptimizer solver(inst.cluster, inst.discipline);
  const auto grid =
      par::linspace(0.1 * inst.lambda, 0.9 * inst.cluster.max_generic_rate(), 40);
  opt::BatchOptions opts;
  opts.chunk = 8;
  opts.cost_hints.resize(grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    opts.cost_hints[k] = (k % 10 == 0) ? 20.0 : 1.0;
  }
  par::ThreadPool one(1);
  par::ThreadPool four(4);
  const auto a = opt::optimize_many(solver, grid, one, opts);
  const auto b = opt::optimize_many(solver, grid, four, opts);
  const auto plain = opt::optimize_many(solver, grid, four);
  ASSERT_EQ(a.size(), grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_EQ(a[k].response_time, b[k].response_time) << "k=" << k;  // bitwise
    EXPECT_NEAR(a[k].response_time, plain[k].response_time,
                1e-9 * (1.0 + plain[k].response_time))
        << "k=" << k;
  }
}

TEST(OptimizeMany, PropagatesSolveErrors) {
  const auto cluster = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, Discipline::Fcfs);
  par::ThreadPool pool(2);
  std::vector<double> grid{4.0, 5.0, 1e9 /* infeasible */, 6.0};
  EXPECT_THROW((void)opt::optimize_many(solver, grid, pool), std::invalid_argument);
}

// --- for_each_chunk ------------------------------------------------------

TEST(ForEachChunk, CoversEveryIndexExactlyOnce) {
  par::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(103);
  par::for_each_chunk(pool, hits.size(), 16, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(hi, hits.size());
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ForEachChunk, RethrowsFirstException) {
  par::ThreadPool pool(2);
  EXPECT_THROW(par::for_each_chunk(pool, 50, 8,
                                   [&](std::size_t lo, std::size_t) {
                                     if (lo >= 16) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  EXPECT_THROW(par::for_each_chunk(pool, 5, 0, [](std::size_t, std::size_t) {}),
               std::invalid_argument);
}

}  // namespace
