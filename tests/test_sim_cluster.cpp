// Cluster-level simulation: dispatchers, replications with confidence
// intervals, and the headline validation -- the simulated blade center at
// the optimizer's distribution reproduces the analytic minimized T'.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "sim/dispatcher.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace blade;
using sim::SchedulingMode;
using sim::SimConfig;

TEST(Dispatchers, ProbabilisticFollowsRates) {
  sim::ProbabilisticDispatcher d({1.0, 3.0}, sim::RngStream(1, 0));
  // Routing needs server pointers only for the size check; fabricate two.
  sim::Engine e;
  sim::ResponseTimeCollector col;
  sim::ServerSim s0(e, 1, 1.0, SchedulingMode::Fcfs, col);
  sim::ServerSim s1(e, 1, 1.0, SchedulingMode::Fcfs, col);
  const std::vector<sim::ServerSim*> servers{&s0, &s1};
  int first = 0;
  const int total = 40000;
  for (int i = 0; i < total; ++i) {
    if (d.route(servers) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / total, 0.25, 0.01);
}

TEST(Dispatchers, ProbabilisticValidation) {
  EXPECT_THROW(sim::ProbabilisticDispatcher({}, sim::RngStream(1, 0)), std::invalid_argument);
  EXPECT_THROW(sim::ProbabilisticDispatcher({0.0, 0.0}, sim::RngStream(1, 0)),
               std::invalid_argument);
  EXPECT_THROW(sim::ProbabilisticDispatcher({-1.0, 2.0}, sim::RngStream(1, 0)),
               std::invalid_argument);
}

TEST(Dispatchers, RoundRobinCycles) {
  sim::RoundRobinDispatcher d;
  sim::Engine e;
  sim::ResponseTimeCollector col;
  sim::ServerSim s0(e, 1, 1.0, SchedulingMode::Fcfs, col);
  sim::ServerSim s1(e, 1, 1.0, SchedulingMode::Fcfs, col);
  sim::ServerSim s2(e, 1, 1.0, SchedulingMode::Fcfs, col);
  const std::vector<sim::ServerSim*> servers{&s0, &s1, &s2};
  EXPECT_EQ(d.route(servers), 0u);
  EXPECT_EQ(d.route(servers), 1u);
  EXPECT_EQ(d.route(servers), 2u);
  EXPECT_EQ(d.route(servers), 0u);
}

TEST(Dispatchers, JsqPicksLeastLoaded) {
  sim::Engine e;
  sim::ResponseTimeCollector col;
  sim::ServerSim s0(e, 1, 1.0, SchedulingMode::Fcfs, col);
  sim::ServerSim s1(e, 1, 1.0, SchedulingMode::Fcfs, col);
  sim::Task t;
  t.cls = sim::TaskClass::Generic;
  t.work = 100.0;
  s0.arrive(t);  // s0 now busy
  sim::JoinShortestQueueDispatcher d;
  const std::vector<sim::ServerSim*> servers{&s0, &s1};
  EXPECT_EQ(d.route(servers), 1u);
}

TEST(ClusterSim, OptimalDistributionReproducesAnalyticTPrime) {
  // The headline validation: simulate Example 1's blade center at the
  // optimizer's rates and recover T' = 0.8964703 within sampling noise.
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  const auto sol =
      opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);

  SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.warmup = 3000.0;
  const auto rep = sim::replicate(
      [&](const SimConfig& c) {
        return sim::simulate_split(cluster, sol.rates, SchedulingMode::Fcfs, c);
      },
      cfg, 6);
  EXPECT_NEAR(rep.generic_response.mean, sol.response_time, 0.03 * sol.response_time);
}

TEST(ClusterSim, PriorityDistributionReproducesAnalyticTPrime) {
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  const auto sol = opt::LoadDistributionOptimizer(cluster, queue::Discipline::SpecialPriority)
                       .optimize(lambda);
  SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.warmup = 3000.0;
  const auto rep = sim::replicate(
      [&](const SimConfig& c) {
        return sim::simulate_split(cluster, sol.rates, SchedulingMode::NonPreemptivePriority, c);
      },
      cfg, 6);
  EXPECT_NEAR(rep.generic_response.mean, sol.response_time, 0.03 * sol.response_time);
}

TEST(ClusterSim, DispatchedProbabilisticMatchesStaticSplit) {
  // Splitting one Poisson stream probabilistically is the same process as
  // independent per-server streams; the two simulations must agree.
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  const auto sol =
      opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);
  SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.warmup = 3000.0;
  const auto split = sim::simulate_split(cluster, sol.rates, SchedulingMode::Fcfs, cfg);
  sim::ProbabilisticDispatcher d(sol.rates, sim::RngStream(cfg.seed, 999));
  const auto routed = sim::simulate_dispatched(cluster, lambda, d, SchedulingMode::Fcfs, cfg);
  EXPECT_NEAR(routed.generic_mean_response, split.generic_mean_response,
              0.05 * split.generic_mean_response);
}

TEST(ClusterSim, JsqBeatsStaticSplitAtHighLoad) {
  // Dynamic state-aware routing beats any static split -- the caveat the
  // paper's static model leaves open; documents what optimality means here.
  const auto cluster = model::paper_example_cluster();
  const double lambda = 0.85 * cluster.max_generic_rate();
  const auto sol =
      opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs).optimize(lambda);
  SimConfig cfg;
  cfg.horizon = 20000.0;
  cfg.warmup = 2000.0;
  const auto split = sim::simulate_split(cluster, sol.rates, SchedulingMode::Fcfs, cfg);
  sim::JoinShortestQueueDispatcher jsq;
  const auto dynamic = sim::simulate_dispatched(cluster, lambda, jsq, SchedulingMode::Fcfs, cfg);
  EXPECT_LT(dynamic.generic_mean_response, split.generic_mean_response);
}

TEST(ClusterSim, ReplicationCiShrinksWithMoreReplications) {
  const auto cluster = model::paper_example_cluster();
  const auto sol = opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs)
                       .optimize(model::paper_example_lambda());
  SimConfig cfg;
  cfg.horizon = 4000.0;
  cfg.warmup = 500.0;
  auto run = [&](const SimConfig& c) {
    return sim::simulate_split(cluster, sol.rates, SchedulingMode::Fcfs, c);
  };
  const auto few = sim::replicate(run, cfg, 4);
  const auto many = sim::replicate(run, cfg, 16);
  EXPECT_LT(many.generic_response.half_width, few.generic_response.half_width);
  EXPECT_THROW((void)sim::replicate(run, cfg, 1), std::invalid_argument);
}

TEST(ClusterSim, DispatchedValidation) {
  const auto cluster = model::paper_example_cluster();
  sim::RoundRobinDispatcher rr;
  SimConfig cfg;
  EXPECT_THROW(
      (void)sim::simulate_dispatched(cluster, 0.0, rr, SchedulingMode::Fcfs, cfg),
      std::invalid_argument);
}

}  // namespace
