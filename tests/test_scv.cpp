// Task-size variability (Allen-Cunneen extension): exactness at scv = 1,
// scaling of waits, effect on the optimal distribution, and consistency
// with the standalone MGmApprox model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "queueing/blade_queue.hpp"
#include "queueing/mgm.hpp"

namespace {

using namespace blade;
using queue::BladeQueue;
using queue::Discipline;

TEST(Scv, DefaultIsExponential) {
  const BladeQueue a(4, 1.0, 1.0, Discipline::Fcfs);
  const BladeQueue b(4, 1.0, 1.0, Discipline::Fcfs, 1.0);
  for (double lam : {0.5, 1.5, 2.5}) {
    EXPECT_DOUBLE_EQ(a.generic_response_time(lam), b.generic_response_time(lam));
  }
  EXPECT_DOUBLE_EQ(a.service_scv(), 1.0);
}

TEST(Scv, DeterministicHalvesTheWait) {
  const BladeQueue exp(4, 1.0, 1.0, Discipline::Fcfs, 1.0);
  const BladeQueue det(4, 1.0, 1.0, Discipline::Fcfs, 0.0);
  for (double lam : {0.5, 1.5, 2.5}) {
    const double w_exp = exp.generic_response_time(lam) - 1.0;
    const double w_det = det.generic_response_time(lam) - 1.0;
    EXPECT_NEAR(w_det, 0.5 * w_exp, 1e-12);
  }
}

TEST(Scv, MatchesStandaloneMGmWithoutSpecialTasks) {
  for (double scv : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const BladeQueue q(5, 0.8, 0.0, Discipline::Fcfs, scv);
    const queue::MGmApprox ref(5, 0.8, scv);
    for (double lam : {1.0, 3.0, 5.0}) {
      EXPECT_NEAR(q.generic_response_time(lam), ref.mean_response_time(lam), 1e-12)
          << "scv=" << scv << " lam=" << lam;
    }
  }
}

TEST(Scv, PriorityFactorComposesWithVariability) {
  // T'(prio, scv) - xbar == (T'(fcfs, scv) - xbar) / (1 - rho'').
  const double scv = 2.5;
  const BladeQueue f(6, 0.7, 3.0, Discipline::Fcfs, scv);
  const BladeQueue p(6, 0.7, 3.0, Discipline::SpecialPriority, scv);
  const double rho2 = p.special_utilization();
  for (double lam : {0.5, 2.0, 4.0}) {
    const double wf = f.generic_response_time(lam) - 0.7;
    const double wp = p.generic_response_time(lam) - 0.7;
    EXPECT_NEAR(wp, wf / (1.0 - rho2), 1e-12);
  }
}

TEST(Scv, DerivativeScalesWithVariabilityFactor) {
  const BladeQueue base(4, 1.0, 1.0, Discipline::Fcfs, 1.0);
  const BladeQueue heavy(4, 1.0, 1.0, Discipline::Fcfs, 3.0);
  for (double lam : {0.5, 1.5, 2.5}) {
    EXPECT_NEAR(heavy.dT_dlambda(lam), 2.0 * base.dT_dlambda(lam), 1e-12);
  }
}

TEST(Scv, MarginalStillIncreasing) {
  for (double scv : {0.0, 2.0, 5.0}) {
    const BladeQueue q(4, 1.0, 1.0, Discipline::Fcfs, scv);
    double prev = q.lagrange_marginal(0.0);
    for (double lam = 0.2; lam < 0.95 * q.max_generic_rate(); lam += 0.2) {
      const double cur = q.lagrange_marginal(lam);
      EXPECT_GT(cur, prev) << "scv=" << scv;
      prev = cur;
    }
  }
}

TEST(Scv, OptimizerSolvesUnderVariability) {
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  opt::OptimizerOptions heavy;
  heavy.service_scv = 4.0;
  const auto sol_h =
      opt::LoadDistributionOptimizer(cluster, Discipline::Fcfs, heavy).optimize(lambda);
  const auto sol_e = opt::LoadDistributionOptimizer(cluster, Discipline::Fcfs).optimize(lambda);
  EXPECT_NEAR(sol_h.total_rate(), lambda, 1e-9 * lambda);
  // Variability inflates the optimized response time.
  EXPECT_GT(sol_h.response_time, sol_e.response_time);
}

TEST(Scv, DeterministicTasksShiftLoadTowardSlowServers) {
  // Lower variability weakens the queueing penalty, so the optimizer can
  // afford to use slow servers a bit more (their wait term shrinks).
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  opt::OptimizerOptions det;
  det.service_scv = 0.0;
  const auto sol_d =
      opt::LoadDistributionOptimizer(cluster, Discipline::Fcfs, det).optimize(lambda);
  const auto sol_e = opt::LoadDistributionOptimizer(cluster, Discipline::Fcfs).optimize(lambda);
  EXPECT_LT(sol_d.response_time, sol_e.response_time);
  // The distributions genuinely differ.
  double max_shift = 0.0;
  for (std::size_t i = 0; i < sol_d.rates.size(); ++i) {
    max_shift = std::max(max_shift, std::abs(sol_d.rates[i] - sol_e.rates[i]));
  }
  EXPECT_GT(max_shift, 1e-3);
}

TEST(Scv, RejectsNegative) {
  EXPECT_THROW(BladeQueue(2, 1.0, 0.0, Discipline::Fcfs, -0.1), std::invalid_argument);
}

}  // namespace
