// The paper's Section 5 observations, asserted quantitatively. Each test
// names the claim as printed in the paper and checks it on the same
// configurations the paper used.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using opt::LoadDistributionOptimizer;
using queue::Discipline;

double optimal_T(const model::Cluster& c, Discipline d, double lambda) {
  return LoadDistributionOptimizer(c, d).optimize(lambda).response_time;
}

// "It is obvious that the average response time T' of generic tasks with
// prioritized special tasks is greater than that with non-prioritized
// special tasks."
TEST(PaperObservations, PriorityAlwaysCostsGenericTasks) {
  for (const auto& g : model::size_groups()) {
    const double lambda = 0.6 * g.cluster.max_generic_rate();
    EXPECT_GT(optimal_T(g.cluster, Discipline::SpecialPriority, lambda),
              optimal_T(g.cluster, Discipline::Fcfs, lambda))
        << g.name;
  }
}

// "Slight increment of m noticeably reduces the average response time T'
// of generic tasks ... especially when lambda' is large."
TEST(PaperObservations, ServerSizesMatterMoreAtHighLoad) {
  const auto groups = model::size_groups();  // m = 49 ... 63
  const double lambda_lo = 10.0;
  const double lambda_hi = 32.0;  // feasible for every group
  double t1_lo = 0, t5_lo = 0, t1_hi = 0, t5_hi = 0;
  t1_lo = optimal_T(groups.front().cluster, Discipline::Fcfs, lambda_lo);
  t5_lo = optimal_T(groups.back().cluster, Discipline::Fcfs, lambda_lo);
  t1_hi = optimal_T(groups.front().cluster, Discipline::Fcfs, lambda_hi);
  t5_hi = optimal_T(groups.back().cluster, Discipline::Fcfs, lambda_hi);
  // More blades help at every load...
  EXPECT_LT(t5_lo, t1_lo);
  EXPECT_LT(t5_hi, t1_hi);
  // ...and the absolute gap grows with lambda'.
  EXPECT_GT(t1_hi - t5_hi, t1_lo - t5_lo);
}

// "Slight increment of s noticeably reduces T' ... especially when
// lambda' is large."
TEST(PaperObservations, ServerSpeedsMatterMoreAtHighLoad) {
  const auto groups = model::speed_groups();  // s = 1.5 ... 1.9
  const double lambda_lo = 10.0;
  const double lambda_hi = 30.0;
  const double gap_lo = optimal_T(groups.front().cluster, Discipline::Fcfs, lambda_lo) -
                        optimal_T(groups.back().cluster, Discipline::Fcfs, lambda_lo);
  const double gap_hi = optimal_T(groups.front().cluster, Discipline::Fcfs, lambda_hi) -
                        optimal_T(groups.back().cluster, Discipline::Fcfs, lambda_hi);
  EXPECT_GT(gap_lo, 0.0);
  EXPECT_GT(gap_hi, gap_lo);
}

// "Slight increment of rbar noticeably increases T'."
TEST(PaperObservations, TaskRequirementIncreasesResponseTime) {
  const auto groups = model::requirement_groups();  // rbar = 0.8 ... 1.2
  const double lambda = 20.0;
  double prev = 0.0;
  for (const auto& g : groups) {
    const double t = optimal_T(g.cluster, Discipline::Fcfs, lambda);
    EXPECT_GT(t, prev) << g.name;
    prev = t;
  }
}

// "Slight increment of the arrival rates of special tasks noticeably
// increases T'."
TEST(PaperObservations, SpecialTaskLoadIncreasesResponseTime) {
  const auto groups = model::special_rate_groups();  // y = 0.20 ... 0.40
  const double lambda = 20.0;
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    double prev = 0.0;
    for (const auto& g : groups) {
      const double t = optimal_T(g.cluster, d, lambda);
      EXPECT_GT(t, prev) << g.name << " " << queue::to_string(d);
      prev = t;
    }
  }
}

// "All reduction of T' is due to the increment of the saturation point
// of lambda'." -- the saturation ordering matches the T' ordering.
TEST(PaperObservations, SaturationPointExplainsTheRanking) {
  const auto groups = model::size_groups();
  double prev_sat = 0.0;
  double prev_T = 1e18;
  const double lambda = 30.0;
  for (const auto& g : groups) {
    const double sat = g.cluster.max_generic_rate();
    const double t = optimal_T(g.cluster, Discipline::Fcfs, lambda);
    EXPECT_GT(sat, prev_sat) << g.name;
    EXPECT_LT(t, prev_T) << g.name;
    prev_sat = sat;
    prev_T = t;
  }
}

// "The server size heterogeneity does not have much impact on T' ...
// larger heterogeneity results in shorter T'."
TEST(PaperObservations, SizeHeterogeneityOrderedButClose) {
  const auto groups = model::size_heterogeneity_groups();
  const double lambda = 0.6 * groups.front().cluster.max_generic_rate();
  double prev = 0.0;
  for (const auto& g : groups) {  // group1 most heterogeneous ... group5 least
    const double t = optimal_T(g.cluster, Discipline::Fcfs, lambda);
    EXPECT_GT(t, prev) << g.name;  // T' increases from group1 to group5
    prev = t;
  }
  const double first = optimal_T(groups.front().cluster, Discipline::Fcfs, lambda);
  EXPECT_LT(prev / first, 1.1);  // "not much impact": within 10% at this load
}

// Same for speed heterogeneity (Figs. 14-15).
TEST(PaperObservations, SpeedHeterogeneityOrdered) {
  const auto groups = model::speed_heterogeneity_groups();
  const double lambda = 0.75 * groups.front().cluster.max_generic_rate();
  double prev = 0.0;
  for (const auto& g : groups) {
    const double t = optimal_T(g.cluster, Discipline::Fcfs, lambda);
    EXPECT_GT(t, prev) << g.name;
    prev = t;
  }
}

// "For the optimal load distribution of generic tasks, the n servers
// have different utilizations." (closing remark under Table 1)
TEST(PaperObservations, OptimalUtilizationsAreUnequal) {
  const auto c = model::paper_example_cluster();
  const auto sol = LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(23.52);
  double lo = 1.0, hi = 0.0;
  for (double rho : sol.utilizations) {
    lo = std::min(lo, rho);
    hi = std::max(hi, rho);
  }
  EXPECT_GT(hi - lo, 0.05);  // clearly unequal (0.508 ... 0.680 in Table 1)
}

}  // namespace
