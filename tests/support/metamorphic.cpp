#include "support/metamorphic.hpp"

#include <stdexcept>

#include "core/optimizer.hpp"

namespace blade::testsupport {

model::Cluster permuted(const model::Cluster& cluster, const std::vector<std::size_t>& perm) {
  if (perm.size() != cluster.size()) {
    throw std::invalid_argument("permuted: permutation size mismatch");
  }
  std::vector<model::BladeServer> servers;
  servers.reserve(cluster.size());
  for (std::size_t p : perm) servers.push_back(cluster.server(p));
  return model::Cluster(std::move(servers), cluster.rbar());
}

std::vector<std::size_t> rotation(std::size_t n, std::size_t shift) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = (i + shift) % n;
  return perm;
}

model::Cluster speed_scaled(const model::Cluster& cluster, double k) {
  if (!(k > 0.0)) throw std::invalid_argument("speed_scaled: k must be > 0");
  std::vector<model::BladeServer> servers;
  servers.reserve(cluster.size());
  for (const auto& s : cluster.servers()) {
    servers.emplace_back(s.size(), k * s.speed(), k * s.special_rate());
  }
  return model::Cluster(std::move(servers), cluster.rbar());
}

model::Cluster split_server(const model::Cluster& cluster, std::size_t i) {
  const auto& victim = cluster.server(i);
  if (victim.size() < 2 || victim.size() % 2 != 0) {
    throw std::invalid_argument("split_server: server size must be even and >= 2");
  }
  std::vector<model::BladeServer> servers;
  servers.reserve(cluster.size() + 1);
  for (std::size_t j = 0; j < cluster.size(); ++j) {
    if (j == i) {
      const model::BladeServer half(victim.size() / 2, victim.speed(),
                                    0.5 * victim.special_rate());
      servers.push_back(half);
      servers.push_back(half);
    } else {
      servers.push_back(cluster.server(j));
    }
  }
  return model::Cluster(std::move(servers), cluster.rbar());
}

CompareReport check_permutation_invariance(const model::Cluster& cluster, queue::Discipline d,
                                           double lambda, const std::vector<std::size_t>& perm,
                                           const Tolerance& tol, const Tolerance& rate_tol) {
  const auto base = opt::LoadDistributionOptimizer(cluster, d).optimize(lambda);
  const auto moved = opt::LoadDistributionOptimizer(permuted(cluster, perm), d).optimize(lambda);

  CompareReport rep;
  rep.check("response_time", moved.response_time, base.response_time, tol);
  // moved.rates[j] serves the server that was at position perm[j].
  for (std::size_t j = 0; j < perm.size(); ++j) {
    rep.check("rates[perm[" + std::to_string(j) + "]]", moved.rates[j], base.rates[perm[j]],
              rate_tol);
  }
  return rep;
}

CompareReport check_scaling_invariance(const model::Cluster& cluster, queue::Discipline d,
                                       double lambda, double k, const Tolerance& tol,
                                       const Tolerance& rate_tol) {
  const auto base = opt::LoadDistributionOptimizer(cluster, d).optimize(lambda);
  const auto scaled =
      opt::LoadDistributionOptimizer(speed_scaled(cluster, k), d).optimize(k * lambda);

  CompareReport rep;
  rep.check("k * response_time", k * scaled.response_time, base.response_time, tol);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    rep.check("rates[" + std::to_string(i) + "] / k", scaled.rates[i] / k, base.rates[i],
              rate_tol);
  }
  return rep;
}

CompareReport check_split_monotonicity(const model::Cluster& cluster, queue::Discipline d,
                                       double lambda, std::size_t i, const Tolerance& tol) {
  const auto base = opt::LoadDistributionOptimizer(cluster, d).optimize(lambda);
  const auto split = opt::LoadDistributionOptimizer(split_server(cluster, i), d).optimize(lambda);

  CompareReport rep;
  // Pooling inequality: splitting capacity can only hurt. Allow the
  // solver tolerance's worth of slack on the "weakly" side.
  if (split.response_time < base.response_time * (1.0 - tol.rel)) {
    rep.mismatches.push_back({"pooling T'_split >= T'", split.response_time, base.response_time,
                              relative_error(split.response_time, base.response_time, tol.abs)});
  }
  // Symmetry: the two identical halves (at positions i, i+1) share load.
  rep.check("halves equal", split.rates[i], split.rates[i + 1], tol);
  return rep;
}

}  // namespace blade::testsupport
