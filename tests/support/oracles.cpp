#include "support/oracles.hpp"

#include <sstream>

#include "core/closed_form.hpp"
#include "core/discrete_dp.hpp"
#include "core/gradient_optimizer.hpp"
#include "core/kkt.hpp"
#include "sim/simulation.hpp"

namespace blade::testsupport {

std::vector<SolverRun> run_solver_paths(const model::Cluster& cluster, queue::Discipline d,
                                        double lambda, const OracleOptions& opts) {
  std::vector<SolverRun> runs;
  runs.push_back({"bisection", opt::LoadDistributionOptimizer(cluster, d).optimize(lambda)});

  if (opts.run_gradient) {
    runs.push_back({"gradient", opt::gradient_optimize(cluster, d, lambda).distribution});
  }
  if (opts.dp_units > 0) {
    const auto dp = opt::dp_distribution(cluster, d, lambda, opts.dp_units);
    opt::LoadDistribution as_dist;
    as_dist.rates = dp.rates;
    as_dist.response_time = dp.response_time;
    runs.push_back({"dp", std::move(as_dist)});
  }
  if (opts.run_closed_form && cluster.all_single_blade()) {
    runs.push_back({"closed_form", opt::closed_form_distribution(cluster, d, lambda)});
  }
  return runs;
}

std::string OracleReport::summary() const {
  std::ostringstream os;
  os << "paths:";
  for (const auto& p : paths_run) os << ' ' << p;
  os << '\n';
  if (!kkt_ok) os << "KKT: " << kkt_detail << '\n';
  os << comparisons.summary();
  return os.str();
}

OracleReport cross_check(const model::Cluster& cluster, queue::Discipline d, double lambda,
                         const OracleOptions& opts) {
  OracleReport rep;
  const auto runs = run_solver_paths(cluster, d, lambda, opts);
  for (const auto& r : runs) rep.paths_run.push_back(r.name);
  const auto& bis = runs.front().dist;

  const auto kkt = opt::verify_kkt(cluster, d, lambda, bis.rates, opts.kkt_tolerance);
  rep.kkt_ok = kkt.optimal();
  rep.kkt_detail = kkt.detail;

  for (std::size_t k = 1; k < runs.size(); ++k) {
    const auto& run = runs[k];
    if (run.name == "dp") {
      // Grid optimum: may only exceed the continuous one, and not by
      // more than the grid's resolution allows.
      if (run.dist.response_time < bis.response_time * (1.0 - opts.dp_undershoot_rel)) {
        rep.comparisons.mismatches.push_back(
            {"dp undershoots bisection", run.dist.response_time, bis.response_time,
             relative_error(run.dist.response_time, bis.response_time)});
      }
      if (run.dist.response_time > bis.response_time * (1.0 + opts.dp_excess_rel)) {
        rep.comparisons.mismatches.push_back(
            {"dp exceeds bisection beyond grid slack", run.dist.response_time, bis.response_time,
             relative_error(run.dist.response_time, bis.response_time)});
      }
      continue;
    }
    const Tolerance& value_tol =
        run.name == "gradient" ? opts.gradient_agreement : opts.closed_form_agreement;
    rep.comparisons.check(run.name + " T'", run.dist.response_time, bis.response_time, value_tol);
    auto rates = compare_vectors(run.name + " rates", run.dist.rates, bis.rates,
                                 opts.rate_agreement);
    rep.comparisons.mismatches.insert(rep.comparisons.mismatches.end(),
                                      rates.mismatches.begin(), rates.mismatches.end());
  }
  return rep;
}

CompareReport sim_cross_check(const model::Cluster& cluster, queue::Discipline d,
                              const std::vector<double>& rates, double expected_response,
                              int replications, double horizon, double warmup,
                              double rel_slack) {
  sim::SimConfig cfg;
  cfg.horizon = horizon;
  cfg.warmup = warmup;
  const auto mode = sim::to_mode(d);
  const auto result = sim::replicate(
      [&](const sim::SimConfig& c) { return sim::simulate_split(cluster, rates, mode, c); }, cfg,
      replications);

  CompareReport rep;
  const double slack =
      std::max(3.0 * result.generic_response.half_width, rel_slack * expected_response);
  rep.check("simulated T'", result.generic_response.mean, expected_response,
            Tolerance{0.0, slack});
  return rep;
}

}  // namespace blade::testsupport
