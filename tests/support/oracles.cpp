#include "support/oracles.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/closed_form.hpp"
#include "core/discrete_dp.hpp"
#include "core/gradient_optimizer.hpp"
#include "core/kkt.hpp"
#include "numerics/special.hpp"
#include "sim/simulation.hpp"

namespace blade::testsupport {

std::vector<SolverRun> run_solver_paths(const model::Cluster& cluster, queue::Discipline d,
                                        double lambda, const OracleOptions& opts) {
  std::vector<SolverRun> runs;
  runs.push_back({"bisection", opt::LoadDistributionOptimizer(cluster, d).optimize(lambda)});

  if (opts.run_gradient) {
    runs.push_back({"gradient", opt::gradient_optimize(cluster, d, lambda).distribution});
  }
  if (opts.dp_units > 0) {
    const auto dp = opt::dp_distribution(cluster, d, lambda, opts.dp_units);
    opt::LoadDistribution as_dist;
    as_dist.rates = dp.rates;
    as_dist.response_time = dp.response_time;
    runs.push_back({"dp", std::move(as_dist)});
  }
  if (opts.run_closed_form && cluster.all_single_blade()) {
    runs.push_back({"closed_form", opt::closed_form_distribution(cluster, d, lambda)});
  }
  return runs;
}

opt::LoadDistribution seed_bisection_distribution(const model::Cluster& cluster,
                                                  queue::Discipline d, double lambda,
                                                  const opt::OptimizerOptions& oo) {
  // Transcribed from the original optimizer (pure bisection, no
  // derivatives, no warm starts). Do not "improve" this: its value is
  // being a frozen reference implementation of Fig. 2 + Fig. 3.
  const opt::ResponseTimeObjective obj(cluster, std::vector<queue::Discipline>(cluster.size(), d),
                                       lambda, oo.service_scv);
  const std::size_t n = obj.size();

  auto find_rate = [&](std::size_t i, double phi) {
    const double sup = obj.rate_bound(i);
    if (obj.marginal(i, 0.0) >= phi) return 0.0;
    const double hard_ub = (1.0 - oo.saturation_margin) * sup;
    double ub = std::min(hard_ub, 1e-3 * sup);
    int guard = 0;
    while (obj.marginal(i, ub) < phi) {
      if (ub >= hard_ub) return hard_ub;
      ub = std::min(2.0 * ub, hard_ub);
      if (++guard > 200) throw std::runtime_error("seed oracle: inner bracket failed");
    }
    double lb = 0.0;
    int it = 0;
    while (ub - lb > oo.rate_tolerance && it < oo.max_iterations) {
      const double mid = 0.5 * (lb + ub);
      (obj.marginal(i, mid) < phi ? lb : ub) = mid;
      ++it;
    }
    return 0.5 * (lb + ub);
  };
  auto rates_at = [&](double phi) {
    std::vector<double> rates(n);
    for (std::size_t i = 0; i < n; ++i) rates[i] = find_rate(i, phi);
    return rates;
  };
  auto total_of = [](const std::vector<double>& rates) {
    num::KahanSum s;
    for (double r : rates) s.add(r);
    return s.value();
  };

  double phi_ub = 1e-6;
  int expansions = 0;
  while (total_of(rates_at(phi_ub)) < lambda) {
    phi_ub *= 2.0;
    if (++expansions > 200) throw std::runtime_error("seed oracle: outer bracket failed");
  }
  double phi_lb = 0.0;
  int outer_it = 0;
  while (phi_ub - phi_lb > oo.phi_tolerance && outer_it < oo.max_iterations) {
    const double mid = 0.5 * (phi_lb + phi_ub);
    (total_of(rates_at(mid)) < lambda ? phi_lb : phi_ub) = mid;
    ++outer_it;
  }

  opt::LoadDistribution out;
  out.phi = phi_ub;
  out.outer_iterations = outer_it;
  out.rates = rates_at(phi_ub);
  double assigned = total_of(out.rates);
  if (assigned > lambda) {
    const std::vector<double> lo_rates = rates_at(phi_lb);
    const double lo_total = total_of(lo_rates);
    if (assigned - lo_total > oo.rate_tolerance) {
      const double t = std::clamp((lambda - lo_total) / (assigned - lo_total), 0.0, 1.0);
      for (std::size_t i = 0; i < n; ++i) {
        out.rates[i] = lo_rates[i] + t * (out.rates[i] - lo_rates[i]);
      }
      assigned = total_of(out.rates);
    }
  }
  if (assigned > 0.0) {
    const double scale = lambda / assigned;
    for (double& r : out.rates) r *= scale;
  }
  out.utilizations = obj.utilizations(out.rates);
  out.response_times.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.response_times[i] = obj.queue(i).generic_response_time(out.rates[i]);
  }
  out.response_time = obj.value(out.rates);
  return out;
}

std::string OracleReport::summary() const {
  std::ostringstream os;
  os << "paths:";
  for (const auto& p : paths_run) os << ' ' << p;
  os << '\n';
  if (!kkt_ok) os << "KKT: " << kkt_detail << '\n';
  os << comparisons.summary();
  return os.str();
}

OracleReport cross_check(const model::Cluster& cluster, queue::Discipline d, double lambda,
                         const OracleOptions& opts) {
  OracleReport rep;
  const auto runs = run_solver_paths(cluster, d, lambda, opts);
  for (const auto& r : runs) rep.paths_run.push_back(r.name);
  const auto& bis = runs.front().dist;

  const auto kkt = opt::verify_kkt(cluster, d, lambda, bis.rates, opts.kkt_tolerance);
  rep.kkt_ok = kkt.optimal();
  rep.kkt_detail = kkt.detail;

  for (std::size_t k = 1; k < runs.size(); ++k) {
    const auto& run = runs[k];
    if (run.name == "dp") {
      // Grid optimum: may only exceed the continuous one, and not by
      // more than the grid's resolution allows.
      if (run.dist.response_time < bis.response_time * (1.0 - opts.dp_undershoot_rel)) {
        rep.comparisons.mismatches.push_back(
            {"dp undershoots bisection", run.dist.response_time, bis.response_time,
             relative_error(run.dist.response_time, bis.response_time)});
      }
      if (run.dist.response_time > bis.response_time * (1.0 + opts.dp_excess_rel)) {
        rep.comparisons.mismatches.push_back(
            {"dp exceeds bisection beyond grid slack", run.dist.response_time, bis.response_time,
             relative_error(run.dist.response_time, bis.response_time)});
      }
      continue;
    }
    const Tolerance& value_tol =
        run.name == "gradient" ? opts.gradient_agreement : opts.closed_form_agreement;
    rep.comparisons.check(run.name + " T'", run.dist.response_time, bis.response_time, value_tol);
    auto rates = compare_vectors(run.name + " rates", run.dist.rates, bis.rates,
                                 opts.rate_agreement);
    rep.comparisons.mismatches.insert(rep.comparisons.mismatches.end(),
                                      rates.mismatches.begin(), rates.mismatches.end());
  }
  return rep;
}

CompareReport sim_cross_check(const model::Cluster& cluster, queue::Discipline d,
                              const std::vector<double>& rates, double expected_response,
                              int replications, double horizon, double warmup,
                              double rel_slack) {
  sim::SimConfig cfg;
  cfg.horizon = horizon;
  cfg.warmup = warmup;
  const auto mode = sim::to_mode(d);
  const auto result = sim::replicate(
      [&](const sim::SimConfig& c) { return sim::simulate_split(cluster, rates, mode, c); }, cfg,
      replications);

  CompareReport rep;
  const double slack =
      std::max(3.0 * result.generic_response.half_width, rel_slack * expected_response);
  rep.check("simulated T'", result.generic_response.mean, expected_response,
            Tolerance{0.0, slack});
  return rep;
}

}  // namespace blade::testsupport
