#include "support/golden.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/comparators.hpp"

namespace blade::testsupport {

const std::vector<int>& golden_figure_numbers() {
  static const std::vector<int> numbers = {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
  return numbers;
}

std::string golden_figure_id(int number) {
  return (number < 10 ? "fig0" : "fig") + std::to_string(number);
}

std::string table_csv(const cloud::ExampleTable& table) {
  std::ostringstream os;
  os.precision(kGoldenPrecision);
  os << "index,size,speed,service_time,generic_rate,special_rate,utilization\n";
  for (const auto& r : table.rows) {
    os << r.index << ',' << r.size << ',' << r.speed << ',' << r.service_time << ','
       << r.generic_rate << ',' << r.special_rate << ',' << r.utilization << '\n';
  }
  os << "response_time," << table.response_time << '\n';
  os << "lambda_total," << table.lambda_total << '\n';
  return os.str();
}

std::string figure_csv(const cloud::FigureData& fig) {
  return cloud::to_csv(fig, kGoldenPrecision);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("golden: cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("golden: cannot write " + path);
  out << content;
  if (!out) throw std::runtime_error("golden: short write to " + path);
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool parse_double(const std::string& token, double* value) {
  if (token.empty()) return false;
  char* end = nullptr;
  *value = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

}  // namespace

std::optional<std::string> csv_numeric_diff(const std::string& expected, const std::string& actual,
                                            double rel, double abs) {
  const auto exp_lines = split(expected, '\n');
  const auto act_lines = split(actual, '\n');
  std::ostringstream os;
  os.precision(12);
  int reported = 0;
  constexpr int kMaxReported = 8;

  if (exp_lines.size() != act_lines.size()) {
    os << "line count: expected " << exp_lines.size() << ", actual " << act_lines.size() << '\n';
    ++reported;
  }
  const std::size_t lines = std::min(exp_lines.size(), act_lines.size());
  for (std::size_t ln = 0; ln < lines && reported < kMaxReported; ++ln) {
    const auto exp_cells = split(exp_lines[ln], ',');
    const auto act_cells = split(act_lines[ln], ',');
    if (exp_cells.size() != act_cells.size()) {
      os << "line " << ln + 1 << ": cell count " << act_cells.size() << " != "
         << exp_cells.size() << '\n';
      ++reported;
      continue;
    }
    for (std::size_t col = 0; col < exp_cells.size() && reported < kMaxReported; ++col) {
      double e = 0.0, a = 0.0;
      const bool e_num = parse_double(exp_cells[col], &e);
      const bool a_num = parse_double(act_cells[col], &a);
      if (e_num && a_num) {
        if (!approx_equal(a, e, Tolerance{rel, abs})) {
          os << "line " << ln + 1 << " col " << col + 1 << ": " << a << " != " << e
             << " (rel_err=" << relative_error(a, e, abs) << ")\n";
          ++reported;
        }
      } else if (exp_cells[col] != act_cells[col]) {
        os << "line " << ln + 1 << " col " << col + 1 << ": \"" << act_cells[col] << "\" != \""
           << exp_cells[col] << "\"\n";
        ++reported;
      }
    }
  }
  if (reported == 0) return std::nullopt;
  return os.str();
}

}  // namespace blade::testsupport
