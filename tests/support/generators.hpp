// Edge-regime instance generators for the differential suite. Random
// fuzzing (model::random_cluster) explores the bulk of the parameter
// space but rarely lands in the regimes where solvers actually disagree:
// near-saturation (rho -> 1, bisection brackets collapse), the
// single-blade closed-form regime (m_i = 1, Theorems 1/3), very wide
// M/M/m systems (large Erlang-C arguments), and extreme speed/size
// heterogeneity (active sets change, slow servers idle). Each regime
// here deterministically maps a seed to a valid instance inside that
// regime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"

namespace blade::testsupport {

enum class Regime {
  Random,          ///< baseline: model::random_cluster defaults
  NearSaturation,  ///< lambda' at 99.5% of lambda'_max (rho -> 1)
  SingleBlade,     ///< m_i = 1 everywhere: Theorem 1/3 closed forms apply
  LargeServers,    ///< m_i in [32, 96]: large Erlang-C arguments
  SpeedExtremes,   ///< speeds spanning 0.05..20 (400x heterogeneity)
  SizeExtremes,    ///< m_i alternating between 1 and up to 64
};

[[nodiscard]] const char* to_string(Regime r) noexcept;

/// All regimes, in declaration order (for iteration in tests).
[[nodiscard]] const std::vector<Regime>& all_regimes();

/// One ready-to-solve problem instance.
struct Instance {
  std::string name;  ///< "<regime>/seed<k>", for failure messages
  model::Cluster cluster;
  double lambda;  ///< feasible total generic rate, in (0, lambda'_max)
  queue::Discipline discipline;
};

/// Deterministically builds the instance for (regime, seed, discipline).
/// Every returned instance is valid: positive speeds, preload
/// utilizations < 1, and lambda strictly inside (0, lambda'_max).
[[nodiscard]] Instance make_instance(Regime r, std::uint64_t seed, queue::Discipline d);

/// The full corpus: `per_regime` seeds (1..per_regime) for each regime
/// under the given discipline.
[[nodiscard]] std::vector<Instance> instance_corpus(std::size_t per_regime, queue::Discipline d);

}  // namespace blade::testsupport
