// Canonical serialization + tolerant diffing for the golden paper
// regression. The gen_golden tool and test_golden_paper share these
// functions, so a format change can never masquerade as a numerical
// regression: both sides serialize through the same code and the diff
// compares token-by-token, numerically where both tokens parse as
// numbers and textually otherwise.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cloud/experiments.hpp"
#include "cloud/series.hpp"

namespace blade::testsupport {

/// Grid resolution the golden figures are generated and replayed at.
inline constexpr std::size_t kGoldenFigurePoints = 25;

/// Decimal digits in golden files; well beyond the 1e-6 comparison
/// tolerance so formatting noise can never eat the tolerance budget.
inline constexpr int kGoldenPrecision = 12;

/// Figure numbers covered by the golden suite (the paper's Figs. 4-15).
[[nodiscard]] const std::vector<int>& golden_figure_numbers();

/// "fig04" ... "fig15".
[[nodiscard]] std::string golden_figure_id(int number);

/// Canonical CSV for Table 1 / Table 2: one row per server plus
/// response_time / lambda_total summary lines.
[[nodiscard]] std::string table_csv(const cloud::ExampleTable& table);

/// Canonical CSV for a figure (long format: series,x,y).
[[nodiscard]] std::string figure_csv(const cloud::FigureData& fig);

/// Reads a whole file; throws std::runtime_error with the path on failure.
[[nodiscard]] std::string read_file(const std::string& path);

/// Writes a whole file; throws std::runtime_error with the path on failure.
void write_file(const std::string& path, const std::string& content);

/// Token-wise CSV comparison. Numeric tokens compare with relative
/// tolerance `rel` (absolute floor `abs`), everything else exactly.
/// Returns nullopt on match, else a description of the first few
/// mismatches with line/column positions.
[[nodiscard]] std::optional<std::string> csv_numeric_diff(const std::string& expected,
                                                          const std::string& actual,
                                                          double rel = 1e-6, double abs = 1e-9);

}  // namespace blade::testsupport
