// Tolerance-aware comparison layer shared by the differential and golden
// suites: a Tolerance policy (relative + absolute floor), scalar/vector
// comparators that collect every mismatch instead of stopping at the
// first, and gtest adapters so failures print the offending quantity,
// both values, and the realized error in one line.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/optimizer.hpp"

namespace blade::testsupport {

/// Mixed relative/absolute tolerance: values a, b match when
/// |a - b| <= abs + rel * max(|a|, |b|).
struct Tolerance {
  double rel = 1e-6;
  double abs = 1e-9;
};

/// The realized error |a - b| - rel * max(|a|,|b|) clamped at 0 is not
/// useful to report; this returns |a - b| / max(abs-floor, |a|, |b|),
/// i.e. the relative error with an absolute floor, for messages.
[[nodiscard]] double relative_error(double a, double b, double abs_floor = 1e-9);

[[nodiscard]] bool approx_equal(double a, double b, const Tolerance& tol);

/// One quantity that failed a comparison.
struct Mismatch {
  std::string what;      ///< e.g. "rates[3]" or "response_time"
  double actual = 0.0;
  double expected = 0.0;
  double error = 0.0;    ///< relative error with absolute floor
};

/// Accumulates mismatches across a structured comparison.
struct CompareReport {
  std::vector<Mismatch> mismatches;

  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
  /// Multi-line description of every mismatch (empty string when ok).
  [[nodiscard]] std::string summary() const;

  /// Records a mismatch unless the values agree within tol.
  void check(const std::string& what, double actual, double expected, const Tolerance& tol);
};

/// Element-wise vector comparison; a length mismatch is itself recorded.
[[nodiscard]] CompareReport compare_vectors(const std::string& name,
                                            const std::vector<double>& actual,
                                            const std::vector<double>& expected,
                                            const Tolerance& tol);

/// Compares two solver outputs for the same instance: the minimized T'
/// under `value_tol` and the per-server rate vectors under `rate_tol`
/// (rates are compared with an absolute floor of rate_tol.abs because a
/// server idling in one solution and receiving 1e-9 in the other is
/// agreement, not error).
[[nodiscard]] CompareReport compare_distributions(const opt::LoadDistribution& actual,
                                                  const opt::LoadDistribution& expected,
                                                  const Tolerance& value_tol,
                                                  const Tolerance& rate_tol);

/// gtest adapter: EXPECT_TRUE(near(x, y, tol, "T'")) prints both values
/// and the realized error on failure.
[[nodiscard]] ::testing::AssertionResult near(double actual, double expected,
                                              const Tolerance& tol, const std::string& what);

/// gtest adapter for a whole report.
[[nodiscard]] ::testing::AssertionResult report_ok(const CompareReport& report);

}  // namespace blade::testsupport
