#include "support/comparators.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace blade::testsupport {

double relative_error(double a, double b, double abs_floor) {
  const double scale = std::max({abs_floor, std::abs(a), std::abs(b)});
  return std::abs(a - b) / scale;
}

bool approx_equal(double a, double b, const Tolerance& tol) {
  if (std::isnan(a) || std::isnan(b)) return false;
  return std::abs(a - b) <= tol.abs + tol.rel * std::max(std::abs(a), std::abs(b));
}

std::string CompareReport::summary() const {
  std::ostringstream os;
  os.precision(12);
  for (const auto& m : mismatches) {
    os << m.what << ": actual=" << m.actual << " expected=" << m.expected
       << " rel_err=" << m.error << '\n';
  }
  return os.str();
}

void CompareReport::check(const std::string& what, double actual, double expected,
                          const Tolerance& tol) {
  if (!approx_equal(actual, expected, tol)) {
    mismatches.push_back({what, actual, expected, relative_error(actual, expected, tol.abs)});
  }
}

CompareReport compare_vectors(const std::string& name, const std::vector<double>& actual,
                              const std::vector<double>& expected, const Tolerance& tol) {
  CompareReport rep;
  if (actual.size() != expected.size()) {
    rep.mismatches.push_back({name + ".size()", static_cast<double>(actual.size()),
                              static_cast<double>(expected.size()), 1.0});
    return rep;
  }
  for (std::size_t i = 0; i < actual.size(); ++i) {
    rep.check(name + "[" + std::to_string(i) + "]", actual[i], expected[i], tol);
  }
  return rep;
}

CompareReport compare_distributions(const opt::LoadDistribution& actual,
                                    const opt::LoadDistribution& expected,
                                    const Tolerance& value_tol, const Tolerance& rate_tol) {
  CompareReport rep;
  rep.check("response_time", actual.response_time, expected.response_time, value_tol);
  rep.check("total_rate", actual.total_rate(), expected.total_rate(), value_tol);
  auto rates = compare_vectors("rates", actual.rates, expected.rates, rate_tol);
  rep.mismatches.insert(rep.mismatches.end(), rates.mismatches.begin(), rates.mismatches.end());
  return rep;
}

::testing::AssertionResult near(double actual, double expected, const Tolerance& tol,
                                const std::string& what) {
  if (approx_equal(actual, expected, tol)) return ::testing::AssertionSuccess();
  std::ostringstream os;
  os.precision(12);
  os << what << ": actual=" << actual << " expected=" << expected
     << " rel_err=" << relative_error(actual, expected, tol.abs) << " (rel_tol=" << tol.rel
     << " abs_tol=" << tol.abs << ")";
  return ::testing::AssertionFailure() << os.str();
}

::testing::AssertionResult report_ok(const CompareReport& report) {
  if (report.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << report.mismatches.size() << " mismatch(es):\n"
                                       << report.summary();
}

}  // namespace blade::testsupport
