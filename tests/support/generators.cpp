#include "support/generators.hpp"

#include <random>

#include "model/random_cluster.hpp"

namespace blade::testsupport {

namespace {

// Seed-space partition: each regime hashes its seeds away from the plain
// Random regime so corpora never alias the existing fuzz suites.
constexpr std::uint64_t kRegimeStride = 1u << 20;

std::uint64_t regime_seed(Regime r, std::uint64_t seed) {
  return seed + kRegimeStride * (static_cast<std::uint64_t>(r) + 1);
}

model::Cluster size_extremes_cluster(std::uint64_t seed) {
  // Alternate single-blade servers with very wide ones so the optimizer
  // must trade an M/M/1 against an M/M/64 at the same marginal cost.
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 0xBF58476D1CE4E5B9ULL);
  std::uniform_int_distribution<unsigned> n_dist(4, 8);
  std::uniform_int_distribution<unsigned> wide_dist(32, 64);
  std::uniform_real_distribution<double> s_dist(0.8, 2.0);
  std::uniform_real_distribution<double> y_dist(0.0, 0.5);

  const unsigned n = n_dist(rng);
  std::vector<model::BladeServer> servers;
  servers.reserve(n);
  const double rbar = 1.0;
  for (unsigned i = 0; i < n; ++i) {
    const unsigned m = (i % 2 == 0) ? 1 : wide_dist(rng);
    const double s = s_dist(rng);
    const double special = y_dist(rng) * m * s / rbar;
    servers.emplace_back(m, s, special);
  }
  return model::Cluster(std::move(servers), rbar);
}

}  // namespace

const char* to_string(Regime r) noexcept {
  switch (r) {
    case Regime::Random: return "random";
    case Regime::NearSaturation: return "near_saturation";
    case Regime::SingleBlade: return "single_blade";
    case Regime::LargeServers: return "large_servers";
    case Regime::SpeedExtremes: return "speed_extremes";
    case Regime::SizeExtremes: return "size_extremes";
  }
  return "unknown";
}

const std::vector<Regime>& all_regimes() {
  static const std::vector<Regime> regimes = {
      Regime::Random,       Regime::NearSaturation, Regime::SingleBlade,
      Regime::LargeServers, Regime::SpeedExtremes,  Regime::SizeExtremes,
  };
  return regimes;
}

Instance make_instance(Regime r, std::uint64_t seed, queue::Discipline d) {
  const std::uint64_t s = regime_seed(r, seed);
  model::RandomClusterSpec spec;
  spec.seed = s;

  switch (r) {
    case Regime::Random:
      break;
    case Regime::NearSaturation:
      break;  // the regime lives in lambda, not the cluster shape
    case Regime::SingleBlade:
      spec.single_blade_only = true;
      break;
    case Regime::LargeServers:
      spec.min_blades = 32;
      spec.max_blades = 96;
      spec.min_servers = 2;
      spec.max_servers = 6;
      break;
    case Regime::SpeedExtremes:
      spec.min_speed = 0.05;
      spec.max_speed = 20.0;
      break;
    case Regime::SizeExtremes: {
      auto cluster = size_extremes_cluster(s);
      const double lambda = model::random_feasible_rate(cluster, s);
      return {std::string(to_string(r)) + "/seed" + std::to_string(seed), std::move(cluster),
              lambda, d};
    }
  }

  auto cluster = model::random_cluster(spec);
  const double lambda = r == Regime::NearSaturation
                            ? 0.995 * cluster.max_generic_rate()
                            : model::random_feasible_rate(cluster, s);
  return {std::string(to_string(r)) + "/seed" + std::to_string(seed), std::move(cluster), lambda,
          d};
}

std::vector<Instance> instance_corpus(std::size_t per_regime, queue::Discipline d) {
  std::vector<Instance> out;
  out.reserve(per_regime * all_regimes().size());
  for (Regime r : all_regimes()) {
    for (std::uint64_t seed = 1; seed <= per_regime; ++seed) {
      out.push_back(make_instance(r, seed, d));
    }
  }
  return out;
}

}  // namespace blade::testsupport
