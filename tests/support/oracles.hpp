// The differential oracle: runs every independent solution path the repo
// has for one instance -- the paper's double bisection, projected
// gradient descent, discrete DP, and (in the single-blade regime) the
// Theorem 1/3 closed forms -- certifies the bisection answer against the
// KKT conditions, and cross-compares the paths with the asymmetries each
// pair actually admits (the DP is grid-limited, so it may only exceed
// the continuous optimum; the gradient path shares the same continuum).
// An optional simulation oracle replays the optimal split through the
// event-driven simulator and demands statistical agreement.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"
#include "support/comparators.hpp"

namespace blade::testsupport {

struct OracleOptions {
  /// DP grid resolution; 0 skips the DP path (it is the slow oracle).
  std::size_t dp_units = 0;
  bool run_gradient = true;
  /// Closed forms engage automatically only when the cluster is
  /// single-blade; this switch can veto them.
  bool run_closed_form = true;
  double kkt_tolerance = 1e-4;
  /// How close the gradient optimum's T' must be to bisection's.
  Tolerance gradient_agreement{1e-4, 1e-12};
  /// One-sided slack for the DP: dp_T >= bis_T - slack, dp_T <= bis_T * (1 + excess).
  double dp_undershoot_rel = 1e-6;
  double dp_excess_rel = 2e-3;
  Tolerance closed_form_agreement{1e-6, 1e-12};
  /// Rates may differ more than values near flat optima.
  Tolerance rate_agreement{1e-3, 1e-6};
};

/// One solver path's output, labeled for failure messages.
struct SolverRun {
  std::string name;  ///< "bisection", "gradient", "dp", "closed_form"
  opt::LoadDistribution dist;
};

/// Runs the applicable solver paths (always bisection first).
[[nodiscard]] std::vector<SolverRun> run_solver_paths(const model::Cluster& cluster,
                                                      queue::Discipline d, double lambda,
                                                      const OracleOptions& opts = {});

/// The frozen seed solver: a faithful copy of the pure double-bisection
/// algorithm the repo shipped with (doubling bracket + bisection at both
/// levels, dual-end extraction, rescale), kept verbatim so the
/// production solver's Newton/Brent/warm-start fast path can be
/// differentially pinned against the original algorithm forever, not
/// against whatever the production path currently computes.
[[nodiscard]] opt::LoadDistribution seed_bisection_distribution(const model::Cluster& cluster,
                                                                queue::Discipline d, double lambda,
                                                                const opt::OptimizerOptions& oo = {});

struct OracleReport {
  CompareReport comparisons;
  bool kkt_ok = false;
  std::string kkt_detail;
  std::vector<std::string> paths_run;

  [[nodiscard]] bool ok() const noexcept { return kkt_ok && comparisons.ok(); }
  [[nodiscard]] std::string summary() const;
};

/// The full differential check for one instance.
[[nodiscard]] OracleReport cross_check(const model::Cluster& cluster, queue::Discipline d,
                                       double lambda, const OracleOptions& opts = {});

/// Simulation oracle: replications of the event-driven simulator at the
/// given split must bracket the analytic T' within
/// max(3 sigma-widths, rel_slack * T'). Returns a CompareReport so the
/// failure carries both numbers.
[[nodiscard]] CompareReport sim_cross_check(const model::Cluster& cluster, queue::Discipline d,
                                            const std::vector<double>& rates,
                                            double expected_response, int replications = 4,
                                            double horizon = 20000.0, double warmup = 2000.0,
                                            double rel_slack = 0.03);

}  // namespace blade::testsupport
