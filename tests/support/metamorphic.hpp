// Metamorphic transforms of a problem instance together with the exact
// relation the paper's optimum must satisfy across the transform:
//
//   permutation   reordering servers permutes the optimal rates and
//                 leaves T' identical (the objective is separable);
//   joint scaling s_i <- k s_i, lambda'' <- k lambda'', lambda' <- k
//                 lambda', rbar fixed: every queue runs k times faster
//                 at identical utilization, so the optimal rates scale
//                 by k and T' by exactly 1/k;
//   server split  replacing S_i (even m_i) by two identical halves
//                 (m_i/2 blades each, half the special load) can never
//                 help: resource pooling makes the split optimum T'
//                 weakly larger, and by symmetry the two halves receive
//                 equal generic load.
//
// Each check_* runs the paper's bisection solver on both sides of the
// transform and returns a CompareReport, so a violation pinpoints the
// quantity that broke rather than a bare boolean.
#pragma once

#include <cstddef>
#include <vector>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"
#include "support/comparators.hpp"

namespace blade::testsupport {

/// Servers reordered as servers[perm[0]], servers[perm[1]], ...; rbar kept.
[[nodiscard]] model::Cluster permuted(const model::Cluster& cluster,
                                      const std::vector<std::size_t>& perm);

/// The rotation permutation (i + shift) mod n, a cheap deterministic
/// derangement for n >= 2, shift in [1, n).
[[nodiscard]] std::vector<std::size_t> rotation(std::size_t n, std::size_t shift);

/// Speeds and special rates scaled by k > 0, rbar unchanged.
[[nodiscard]] model::Cluster speed_scaled(const model::Cluster& cluster, double k);

/// Server `i` (must have even size) replaced by two identical halves.
/// The halves are adjacent at positions i and i+1.
[[nodiscard]] model::Cluster split_server(const model::Cluster& cluster, std::size_t i);

/// Near a flat optimum (wide servers, extreme heterogeneity) the
/// objective pins T' much harder than the rate vector: rate deviations
/// of ~1e-4 move T' by less than 1e-9. The invariance checks therefore
/// take a separate, looser tolerance for rate comparisons.
inline constexpr Tolerance kRateTolerance{1e-3, 1e-6};

/// T' equal across the permutation; rates equal up to the permutation.
[[nodiscard]] CompareReport check_permutation_invariance(const model::Cluster& cluster,
                                                         queue::Discipline d, double lambda,
                                                         const std::vector<std::size_t>& perm,
                                                         const Tolerance& tol,
                                                         const Tolerance& rate_tol = kRateTolerance);

/// T'(k-scaled instance, k * lambda) == T'(instance, lambda) / k and the
/// optimal rates scale by k.
[[nodiscard]] CompareReport check_scaling_invariance(const model::Cluster& cluster,
                                                     queue::Discipline d, double lambda, double k,
                                                     const Tolerance& tol,
                                                     const Tolerance& rate_tol = kRateTolerance);

/// T'_split >= T' (within tol.rel slack) and the two halves receive equal
/// rates. `i` must name a server with even, >= 2, size.
[[nodiscard]] CompareReport check_split_monotonicity(const model::Cluster& cluster,
                                                     queue::Discipline d, double lambda,
                                                     std::size_t i, const Tolerance& tol);

}  // namespace blade::testsupport
