// The umbrella header must compile standalone and expose the advertised
// entry points (a smoke test that the public API surface stays whole).
#include "blade.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughPublicApi) {
  using namespace blade;
  const model::Cluster cluster({model::BladeServer(2, 1.5, 0.5)}, 1.0);
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const auto sol = solver.optimize(1.0);
  EXPECT_GT(sol.response_time, 0.0);

  sim::SimConfig cfg;
  cfg.horizon = 2000.0;
  cfg.warmup = 200.0;
  const auto res = sim::simulate_split(cluster, sol.rates, sim::SchedulingMode::Fcfs, cfg);
  EXPECT_GT(res.generic_samples, 0u);
}

}  // namespace
