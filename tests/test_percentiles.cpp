// Waiting/response-time distributions and the histogram collector:
// closed forms vs direct facts (M/M/1), consistency with mean formulas,
// quantile inversions, and a simulated percentile cross-check.
#include <gtest/gtest.h>

#include <cmath>

#include "model/cluster.hpp"
#include "queueing/mmm.hpp"
#include "queueing/waiting_distribution.hpp"
#include "sim/simulation.hpp"
#include "util/histogram.hpp"

namespace {

using namespace blade;
using queue::WaitingTimeDistribution;

TEST(WaitingDistribution, MM1KnownForms) {
  // M/M/1: P(W > t) = rho e^{-mu(1-rho)t}; P(T > t) = e^{-mu(1-rho)t}.
  const double xbar = 1.0;
  const double lambda = 0.6;
  const WaitingTimeDistribution d(1, xbar, lambda);
  for (double t : {0.0, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(d.waiting_ccdf(t), 0.6 * std::exp(-0.4 * t), 1e-12);
    EXPECT_NEAR(d.response_ccdf(t), std::exp(-0.4 * t), 1e-9) << "t=" << t;
  }
}

TEST(WaitingDistribution, MeanMatchesMMmQueue) {
  for (unsigned m : {1u, 2u, 5u, 14u}) {
    const double xbar = 0.8;
    const queue::MMmQueue q(m, xbar);
    for (double frac : {0.3, 0.6, 0.9}) {
      const double lambda = frac * q.max_arrival_rate();
      const WaitingTimeDistribution d(m, xbar, lambda);
      EXPECT_NEAR(d.mean_response(), q.mean_response_time(lambda), 1e-10)
          << "m=" << m << " frac=" << frac;
    }
  }
}

TEST(WaitingDistribution, MeanMatchesIntegralOfCcdf) {
  // E[T] = integral of the CCDF; trapezoidal check.
  const WaitingTimeDistribution d(4, 1.0, 3.2);
  double integral = 0.0;
  const double dt = 0.001;
  for (double t = 0.0; t < 60.0; t += dt) {
    integral += 0.5 * (d.response_ccdf(t) + d.response_ccdf(t + dt)) * dt;
  }
  EXPECT_NEAR(integral, d.mean_response(), 1e-3);
}

TEST(WaitingDistribution, QuantileInvertsCcdf) {
  const WaitingTimeDistribution d(6, 1.0, 4.5);
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    const double t = d.response_quantile(p);
    EXPECT_NEAR(1.0 - d.response_ccdf(t), p, 1e-8) << "p=" << p;
  }
  // Waiting quantile: below the no-wait mass it is zero.
  const double atom = 1.0 - d.prob_queueing();
  EXPECT_DOUBLE_EQ(d.waiting_quantile(0.5 * atom), 0.0);
  const double t95 = d.waiting_quantile(0.95);
  EXPECT_NEAR(d.waiting_ccdf(t95), 0.05, 1e-10);
}

TEST(WaitingDistribution, TailLengthensWithLoad) {
  const WaitingTimeDistribution light(4, 1.0, 1.0);
  const WaitingTimeDistribution heavy(4, 1.0, 3.6);
  EXPECT_LT(light.response_quantile(0.99), heavy.response_quantile(0.99));
}

TEST(WaitingDistribution, Validation) {
  EXPECT_THROW(WaitingTimeDistribution(0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(WaitingTimeDistribution(2, 1.0, 2.0), std::invalid_argument);
  const WaitingTimeDistribution d(2, 1.0, 1.0);
  EXPECT_THROW((void)d.waiting_ccdf(-1.0), std::invalid_argument);
  EXPECT_THROW((void)d.response_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)d.response_quantile(1.0), std::invalid_argument);
}

// ------------------------------------------------------------- histogram

TEST(Histogram, CountsAndBins) {
  util::Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.7, 9.9, -1.0, 12.0}) h.add(x);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, QuantileOnUniformData) {
  util::Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 10000; ++i) h.add((i + 0.5) / 10000.0);
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.ccdf(0.75), 0.25, 0.02);
}

TEST(Histogram, MergeAndValidation) {
  util::Histogram a(0.0, 1.0, 10), b(0.0, 1.0, 10);
  a.add(0.25);
  b.add(0.75);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  util::Histogram c(0.0, 2.0, 10);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  EXPECT_THROW(util::Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(util::Histogram(0.0, 1.0, 0), std::invalid_argument);
  util::Histogram empty(0.0, 1.0, 4);
  EXPECT_THROW((void)empty.quantile(0.5), std::logic_error);
  EXPECT_THROW((void)a.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, SimulatedResponsePercentileMatchesClosedForm) {
  // Simulate an M/M/4 and compare the 90th/99th percentile of response
  // times with the analytic two-exponential tail.
  const model::Cluster c({model::BladeServer(4, 1.0, 0.0)}, 1.0);
  sim::SimConfig cfg;
  cfg.horizon = 60000.0;
  cfg.warmup = 5000.0;
  cfg.record_generic_trace = true;
  cfg.seed = 31;
  const double lambda = 3.0;
  const auto res = sim::simulate_split(c, {lambda}, sim::SchedulingMode::Fcfs, cfg);
  ASSERT_GT(res.generic_trace.size(), 100000u);

  util::Histogram h(0.0, 40.0, 4000);
  for (double x : res.generic_trace) h.add(x);

  const WaitingTimeDistribution d(4, 1.0, lambda);
  EXPECT_NEAR(h.quantile(0.5), d.response_quantile(0.5), 0.05 * d.response_quantile(0.5));
  EXPECT_NEAR(h.quantile(0.9), d.response_quantile(0.9), 0.05 * d.response_quantile(0.9));
  EXPECT_NEAR(h.quantile(0.99), d.response_quantile(0.99), 0.08 * d.response_quantile(0.99));
}

}  // namespace
