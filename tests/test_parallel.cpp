// Thread pool, parallel_for / parallel_map, and the sweep runner.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "parallel/parallel_for.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace blade::par;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    (void)pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  parallel_for(pool, 7, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::logic_error("bad index");
                            }),
               std::logic_error);
}

TEST(ParallelMap, OrdersResultsByIndex) {
  ThreadPool pool(4);
  const auto out =
      parallel_map<double>(pool, 64, [](std::size_t i) { return static_cast<double>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i * i));
  }
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto g = linspace(1.0, 3.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 3.0);
  EXPECT_DOUBLE_EQ(g[2], 2.0);
  EXPECT_TRUE(linspace(0, 1, 0).empty());
  const auto single = linspace(2.0, 9.0, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 2.0);
  EXPECT_THROW((void)linspace(1.0, 0.0, 3), std::invalid_argument);
}

TEST(Sweep, EvaluatesGridInOrder) {
  ThreadPool pool(4);
  const auto grid = linspace(0.0, 3.14159, 64);
  const auto ys = sweep(pool, grid, [](double x) { return std::sin(x); });
  ASSERT_EQ(ys.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(ys[i], std::sin(grid[i]), 1e-12);
  }
}

TEST(GlobalPool, IsUsable) {
  std::atomic<int> n{0};
  parallel_for(0, 32, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 32);
}

}  // namespace
