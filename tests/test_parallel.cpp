// Thread pool, parallel_for / parallel_map, and the sweep runner.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace blade::par;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    (void)pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  parallel_for(pool, 7, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::logic_error("bad index");
                            }),
               std::logic_error);
}

TEST(ParallelMap, OrdersResultsByIndex) {
  ThreadPool pool(4);
  const auto out =
      parallel_map<double>(pool, 64, [](std::size_t i) { return static_cast<double>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i * i));
  }
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto g = linspace(1.0, 3.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 3.0);
  EXPECT_DOUBLE_EQ(g[2], 2.0);
  EXPECT_TRUE(linspace(0, 1, 0).empty());
  const auto single = linspace(2.0, 9.0, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 2.0);
  EXPECT_THROW((void)linspace(1.0, 0.0, 3), std::invalid_argument);
}

TEST(Sweep, EvaluatesGridInOrder) {
  ThreadPool pool(4);
  const auto grid = linspace(0.0, 3.14159, 64);
  const auto ys = sweep(pool, grid, [](double x) { return std::sin(x); });
  ASSERT_EQ(ys.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(ys[i], std::sin(grid[i]), 1e-12);
  }
}

TEST(GlobalPool, IsUsable) {
  std::atomic<int> n{0};
  parallel_for(0, 32, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 32);
}

/// Chunk boundaries actually produced by a run, for the determinism checks.
std::set<std::pair<std::size_t, std::size_t>> chunks_of(ThreadPool& pool, std::size_t n,
                                                        std::size_t chunk,
                                                        const std::vector<double>& cost) {
  std::mutex mu;
  std::set<std::pair<std::size_t, std::size_t>> out;
  for_each_weighted_chunk(pool, n, chunk, cost, [&](std::size_t lo, std::size_t hi) {
    const std::lock_guard<std::mutex> lock(mu);
    out.emplace(lo, hi);
  });
  return out;
}

TEST(WeightedChunk, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<double> cost(97);
  for (std::size_t i = 0; i < cost.size(); ++i) cost[i] = static_cast<double>(i % 7) + 0.5;
  std::vector<std::atomic<int>> seen(97);
  for_each_weighted_chunk(pool, 97, 8, cost, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) seen[i].fetch_add(1);
  });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// The fix's regression pin: boundaries are a pure function of
// (n, chunk, cost) — a 1-thread and an 8-thread pool must cut the batch
// at the same places, so stateful per-chunk work (warm-started solver
// chains) is reproducible across machines.
TEST(WeightedChunk, BoundariesAreThreadCountInvariant) {
  std::vector<double> cost(64);
  for (std::size_t i = 0; i < cost.size(); ++i) {
    cost[i] = (i % 16 == 0) ? 100.0 : 1.0;  // a few huge items between cheap ones
  }
  ThreadPool one(1);
  ThreadPool eight(8);
  EXPECT_EQ(chunks_of(one, 64, 4, cost), chunks_of(eight, 64, 4, cost));
}

// A single item whose cost dwarfs the rest must land in a chunk of its
// own instead of dragging its neighbors onto one straggling thread.
TEST(WeightedChunk, ExpensiveItemGetsOwnChunk) {
  ThreadPool pool(4);
  std::vector<double> cost(32, 1.0);
  cost[10] = 1000.0;
  const auto chunks = chunks_of(pool, 32, 8, cost);
  bool found = false;
  for (const auto& [lo, hi] : chunks) {
    if (lo <= 10 && 10 < hi) {
      found = true;
      // The hot item closes its chunk immediately after being taken.
      EXPECT_EQ(hi, 11u);
    }
  }
  EXPECT_TRUE(found);
}

// Empty or all-zero hints carry no information: identical to the
// fixed-size for_each_chunk cut.
TEST(WeightedChunk, DegenerateHintsFallBackToFixedChunks) {
  ThreadPool pool(4);
  const std::set<std::pair<std::size_t, std::size_t>> expected = {
      {0, 8}, {8, 16}, {16, 24}, {24, 30}};
  EXPECT_EQ(chunks_of(pool, 30, 8, {}), expected);
  EXPECT_EQ(chunks_of(pool, 30, 8, std::vector<double>(30, 0.0)), expected);
}

// Uniform hints reproduce the fixed-size cut exactly (target = chunk
// items' worth of cost, accumulated one item at a time).
TEST(WeightedChunk, UniformHintsMatchFixedChunks) {
  ThreadPool pool(4);
  EXPECT_EQ(chunks_of(pool, 30, 8, std::vector<double>(30, 3.5)),
            chunks_of(pool, 30, 8, {}));
}

TEST(WeightedChunk, RejectsBadArguments) {
  ThreadPool pool(2);
  const auto noop = [](std::size_t, std::size_t) {};
  EXPECT_THROW(for_each_weighted_chunk(pool, 8, 0, {}, noop), std::invalid_argument);
  const std::vector<double> short_cost(3, 1.0);
  EXPECT_THROW(for_each_weighted_chunk(pool, 8, 2, short_cost, noop), std::invalid_argument);
  const std::vector<double> negative(8, -1.0);
  EXPECT_THROW(for_each_weighted_chunk(pool, 8, 2, negative, noop), std::invalid_argument);
  const std::vector<double> nan_cost(8, std::nan(""));
  EXPECT_THROW(for_each_weighted_chunk(pool, 8, 2, nan_cost, noop), std::invalid_argument);
  // n == 0 is a no-op, never an error.
  for_each_weighted_chunk(pool, 0, 4, {}, noop);
}

TEST(WeightedChunk, RethrowsBodyException) {
  ThreadPool pool(4);
  const std::vector<double> cost(16, 1.0);
  EXPECT_THROW(for_each_weighted_chunk(pool, 16, 2, cost,
                                       [](std::size_t lo, std::size_t) {
                                         if (lo >= 8) throw std::runtime_error("boom");
                                       }),
               std::runtime_error);
}

}  // namespace
