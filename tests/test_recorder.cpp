// Flight-recorder unit and contention tests: event round-trips through
// the per-thread seqlock rings, wrap/drop accounting, both dump
// serializations, auto-dump plumbing, the BLADE_OBS_EVENT toggle
// contract, and the SLO burn-rate monitors (obs/slo.hpp).
//
// The contention suites ride the `fast` label into the TSan preset:
// K writer threads hammer record() while the main thread dumps, which
// is exactly the claimed-safe concurrent schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "util/json.hpp"

namespace {

using blade::obs::Cause;
using blade::obs::Dump;
using blade::obs::Event;
using blade::obs::EventType;
using blade::obs::recorder;
using blade::util::JsonValue;

/// Restores default capacity and clears all rings around each test so
/// suites cannot leak events into each other (the recorder is a
/// process-global).
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    recorder().set_dump_sink(nullptr);
    recorder().set_capacity(4096);
    recorder().reset();
  }
  void TearDown() override {
    recorder().set_dump_sink(nullptr);
    recorder().set_capacity(4096);
    recorder().reset();
  }
};

TEST_F(RecorderTest, EventRoundTripsThroughRing) {
  recorder().record(EventType::ShedDecision, 0, 3.5, 4.25, 0.125);
  recorder().record(EventType::ModeTransition, static_cast<std::uint32_t>(Cause::SolverError),
                    0.0, 2.0, 17.0);
  const Dump dump = recorder().dump("test");
  EXPECT_EQ(dump.reason, "test");
  const std::vector<Event> events = dump.merged();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::ShedDecision);
  EXPECT_DOUBLE_EQ(events[0].a, 3.5);
  EXPECT_DOUBLE_EQ(events[0].b, 4.25);
  EXPECT_DOUBLE_EQ(events[0].c, 0.125);
  EXPECT_EQ(events[1].type, EventType::ModeTransition);
  EXPECT_EQ(static_cast<Cause>(events[1].id), Cause::SolverError);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_EQ(events[0].seq + 1, events[1].seq);
}

TEST_F(RecorderTest, WrapKeepsNewestAndCountsDropped) {
  recorder().set_capacity(64);
  recorder().reset();
  constexpr int kExtra = 37;
  for (int i = 0; i < 64 + kExtra; ++i) {
    recorder().record(EventType::Dispatch, static_cast<std::uint32_t>(i), i, 0.0, 0.0);
  }
  const Dump dump = recorder().dump();
  ASSERT_EQ(dump.rings.size(), 1u);
  EXPECT_EQ(dump.rings[0].recorded, 64u + kExtra);
  EXPECT_EQ(dump.rings[0].events.size(), 64u);
  EXPECT_EQ(dump.rings[0].dropped, static_cast<std::uint64_t>(kExtra));
  EXPECT_EQ(dump.total_dropped(), static_cast<std::uint64_t>(kExtra));
  // The survivors are the newest 64, in order.
  const std::vector<Event> events = dump.merged();
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, static_cast<std::uint32_t>(kExtra + i));
  }
}

TEST_F(RecorderTest, CapacityRoundsUpToPowerOfTwoMinimum64) {
  recorder().set_capacity(1);
  EXPECT_EQ(recorder().capacity(), 64u);
  recorder().set_capacity(65);
  EXPECT_EQ(recorder().capacity(), 128u);
  recorder().set_capacity(512);
  EXPECT_EQ(recorder().capacity(), 512u);
}

TEST_F(RecorderTest, ResetDropsEverything) {
  recorder().record(EventType::Dispatch, 1, 0.0, 0.0, 0.0);
  recorder().reset();
  EXPECT_EQ(recorder().dump().total_events(), 0u);
}

TEST_F(RecorderTest, MacroRespectsBuildToggle) {
  BLADE_OBS_EVENT(EpochMark, 9, 1.0, 2.0, 3.0);
  const Dump dump = recorder().dump();
#if BLADE_OBS_ENABLED
  ASSERT_EQ(dump.total_events(), 1u);
  EXPECT_EQ(dump.merged()[0].type, EventType::EpochMark);
  EXPECT_EQ(dump.merged()[0].id, 9u);
#else
  EXPECT_EQ(dump.total_events(), 0u);
#endif
}

TEST_F(RecorderTest, JsonlParsesLineByLine) {
  const std::uint32_t label = recorder().intern_label("solver/outer");
  recorder().record(EventType::SolveStart, 0, 5.0, 9.0, 0.0);
  recorder().record(EventType::ResolveTrigger, static_cast<std::uint32_t>(Cause::Drift), 0.05,
                    0.02, 11.0);
  recorder().record(EventType::SpanEnd, label, 0.001, 0.0, 0.0);
  const std::string jsonl = blade::obs::to_jsonl(recorder().dump("jsonl-test"));

  std::istringstream in(jsonl);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const JsonValue header = blade::util::parse_json(line);
  ASSERT_NE(header.find("schema"), nullptr);
  EXPECT_EQ(header.find("schema")->string, "blade.recorder.v1");
  EXPECT_EQ(header.find("reason")->string, "jsonl-test");

  std::vector<JsonValue> events;
  while (std::getline(in, line)) {
    if (!line.empty()) events.push_back(blade::util::parse_json(line));
  }
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].find("type")->string, "solve_start");
  EXPECT_EQ(events[1].find("type")->string, "resolve_trigger");
  ASSERT_NE(events[1].find("cause"), nullptr);
  EXPECT_EQ(events[1].find("cause")->string, "drift");
  EXPECT_DOUBLE_EQ(events[1].find("a")->number, 0.05);
  ASSERT_NE(events[2].find("label"), nullptr);
  EXPECT_EQ(events[2].find("label")->string, "solver/outer");
}

TEST_F(RecorderTest, ChromeTracePairsSolvesAndEmitsInstants) {
  recorder().record(EventType::SolveStart, 0, 5.0, 9.0, 0.0);
  recorder().record(EventType::SolveEnd, 0, 1.25, 7.0, 120.0);
  recorder().record(EventType::ModeTransition, static_cast<std::uint32_t>(Cause::Infeasible),
                    0.0, 3.0, 20.0);
  const std::string trace = blade::obs::to_chrome_trace(recorder().dump());
  const JsonValue doc = blade::util::parse_json(trace);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  bool saw_solve_span = false;
  bool saw_mode_instant = false;
  bool saw_thread_meta = false;
  for (const JsonValue& e : events->array) {
    const std::string ph = e.find("ph")->string;
    const std::string name = e.find("name")->string;
    if (ph == "X" && name == "solve") {
      saw_solve_span = true;
      EXPECT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->number, 0.0);
    }
    if (ph == "i" && name == "mode_transition:infeasible") saw_mode_instant = true;
    if (ph == "M" && name == "thread_name") saw_thread_meta = true;
  }
  EXPECT_TRUE(saw_solve_span);
  EXPECT_TRUE(saw_mode_instant);
  EXPECT_TRUE(saw_thread_meta);
}

TEST_F(RecorderTest, WriteDumpFileSelectsFormatBySuffix) {
  recorder().record(EventType::EpochMark, 1, 0.5, 2.0, 0.0);
  const Dump dump = recorder().dump();
  const std::string jsonl_path = ::testing::TempDir() + "recorder_test_dump.jsonl";
  const std::string chrome_path = ::testing::TempDir() + "recorder_test_dump.json";
  blade::obs::write_dump_file(dump, jsonl_path);
  blade::obs::write_dump_file(dump, chrome_path);

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_NE(slurp(jsonl_path).find("blade.recorder.v1"), std::string::npos);
  const JsonValue chrome = blade::util::parse_json(slurp(chrome_path));
  EXPECT_NE(chrome.find("traceEvents"), nullptr);
  std::remove(jsonl_path.c_str());
  std::remove(chrome_path.c_str());
}

TEST_F(RecorderTest, AutoDumpRemembersAndForwardsToSink) {
  std::vector<std::string> reasons;
  recorder().set_dump_sink([&](const Dump& d) { reasons.push_back(d.reason); });
  const std::uint64_t before = recorder().auto_dumps();
  recorder().record(EventType::WatchdogTrip, 6, 0.0, 0.0, 0.0);
  recorder().auto_dump("watchdog");
  EXPECT_EQ(recorder().auto_dumps(), before + 1);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "watchdog");
  const Dump last = recorder().last_auto_dump();
  EXPECT_EQ(last.reason, "watchdog");
  EXPECT_EQ(last.total_events(), 1u);
}

TEST_F(RecorderTest, ConcurrentWritersAndDumperAccountExactly) {
  // K writers record while the main thread dumps continuously. Seqlock
  // validation may discard torn slots (counted as dropped), but
  // recorded == retained-at-end + dropped-at-end must hold exactly and
  // every surviving event must be internally consistent.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  recorder().set_capacity(256);
  recorder().reset();
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([w, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        recorder().record(EventType::Dispatch, static_cast<std::uint32_t>(w),
                          static_cast<double>(i), 0.0, 0.0);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int d = 0; d < 50; ++d) {
    const Dump mid = recorder().dump("mid-flight");
    for (const auto& ring : mid.rings) {
      EXPECT_EQ(ring.recorded, ring.dropped + ring.events.size());
    }
  }
  for (auto& t : writers) t.join();

  const Dump final_dump = recorder().dump("final");
  std::uint64_t recorded_total = 0;
  for (const auto& ring : final_dump.rings) {
    EXPECT_EQ(ring.recorded, ring.dropped + ring.events.size());
    recorded_total += ring.recorded;
    std::uint64_t prev_seq = 0;
    bool first = true;
    for (const Event& e : ring.events) {
      EXPECT_EQ(e.type, EventType::Dispatch);
      EXPECT_LT(e.id, static_cast<std::uint32_t>(kThreads));
      if (!first) {
        EXPECT_GT(e.seq, prev_seq);
      }
      prev_seq = e.seq;
      first = false;
    }
  }
  EXPECT_EQ(recorded_total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(RecorderTest, ConcurrentAutoDumpsDoNotLoseCount) {
  constexpr int kThreads = 4;
  constexpr int kDumpsPerThread = 25;
  const std::uint64_t before = recorder().auto_dumps();
  std::atomic<int> sink_calls{0};
  recorder().set_dump_sink([&](const Dump&) { sink_calls.fetch_add(1); });
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([w] {
      for (int i = 0; i < kDumpsPerThread; ++i) {
        recorder().record(EventType::EpochMark, static_cast<std::uint32_t>(w), i, 0.0, 0.0);
        recorder().auto_dump("stress");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder().auto_dumps() - before,
            static_cast<std::uint64_t>(kThreads) * kDumpsPerThread);
  EXPECT_EQ(sink_calls.load(), kThreads * kDumpsPerThread);
}

// ---------------------------------------------------------------------------
// SLO burn-rate monitors.

TEST(BurnRateMonitor, BurnRateIsBadFractionOverErrorBudget) {
  // objective 0.9 => error budget 0.1. 2 bad of 10 => burn 2.0.
  blade::obs::BurnRateMonitor m("test", 0.9, 100.0);
  for (int i = 0; i < 8; ++i) m.observe(static_cast<double>(i), true);
  m.observe(8.0, false);
  m.observe(9.0, false);
  EXPECT_NEAR(m.burn_rate(), 2.0, 1e-12);
  EXPECT_EQ(m.breaches(), 2u);
  EXPECT_EQ(m.samples(), 10u);
}

TEST(BurnRateMonitor, WindowForgetsOldObservations) {
  blade::obs::BurnRateMonitor m("test", 0.5, 10.0);
  m.observe(0.0, false);
  EXPECT_NEAR(m.burn_rate(), 2.0, 1e-12);  // 1 bad of 1 over budget 0.5
  for (int i = 1; i <= 20; ++i) m.observe(static_cast<double>(i), true);
  // The bad sample at t=0 fell out of the trailing window.
  EXPECT_NEAR(m.burn_rate(), 0.0, 1e-12);
  EXPECT_EQ(m.breaches(), 1u);  // breaches are cumulative, not windowed
}

TEST(SloSet, EvaluatesEpochsAndFormatsLines) {
  blade::obs::SloTargets targets;
  targets.response_time = 2.0;
  targets.max_shed_fraction = 0.1;
  targets.window = 40.0;
  blade::obs::SloSet set(targets);

  blade::obs::SloEpoch good;
  good.index = 1;
  good.total = 2;
  good.t0 = 0.0;
  good.t1 = 10.0;
  good.mean_response = 1.5;
  good.response_samples = 100;
  good.shed_fraction = 0.0;
  const auto ok = set.observe(good);
  EXPECT_TRUE(ok.ok);
  EXPECT_NE(ok.line.find("slo epoch 1/2"), std::string::npos);
  EXPECT_NE(ok.line.find("OK"), std::string::npos);

  blade::obs::SloEpoch bad = good;
  bad.index = 2;
  bad.t0 = 10.0;
  bad.t1 = 20.0;
  bad.mean_response = 3.0;  // violates the T' target
  const auto breach = set.observe(bad);
  EXPECT_FALSE(breach.ok);
  EXPECT_NE(breach.line.find("BREACH"), std::string::npos);
  EXPECT_GT(breach.worst_burn, 0.0);
  EXPECT_EQ(set.total_breaches(), 1u);
}

TEST(SloSet, EmptyEpochsCountGood) {
  blade::obs::SloTargets targets;
  targets.response_time = 1.0;
  targets.resolve_latency = 0.5;
  targets.window = 10.0;
  blade::obs::SloSet set(targets);
  blade::obs::SloEpoch idle;  // zero samples, zero resolves
  idle.index = 1;
  idle.total = 1;
  idle.t1 = 1.0;
  EXPECT_TRUE(set.observe(idle).ok);
  EXPECT_EQ(set.total_breaches(), 0u);
}

TEST(SloTargets, ValidationRejectsBadDomains) {
  blade::obs::SloTargets t;
  t.objective = 1.0;  // must be in (0, 1)
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.objective = 0.99;
  t.response_time = -1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.response_time = 1.0;
  t.window = 10.0;
  EXPECT_NO_THROW(t.validate());
}

}  // namespace
