// Baseline policies: feasibility, intent (what each heuristic equalizes),
// and the central property that the optimizer dominates all of them.
#include <gtest/gtest.h>

#include <cmath>

#include "core/objective.hpp"
#include "core/optimizer.hpp"
#include "core/policies.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using opt::Policy;
using queue::Discipline;

TEST(Policies, NamesAndEnumeration) {
  const auto all = opt::all_policies();
  EXPECT_EQ(all.size(), 5u);
  for (Policy p : all) {
    EXPECT_STRNE(opt::to_string(p), "unknown");
  }
}

TEST(Policies, AllFeasibleOnPaperCluster) {
  const auto c = model::paper_example_cluster();
  for (Policy p : opt::all_policies()) {
    for (double frac : {0.2, 0.5, 0.9}) {
      const double lambda = frac * c.max_generic_rate();
      const auto rates = opt::distribute(p, c, Discipline::Fcfs, lambda);
      ASSERT_EQ(rates.size(), c.size());
      double total = 0.0;
      for (std::size_t i = 0; i < rates.size(); ++i) {
        EXPECT_GE(rates[i], 0.0) << opt::to_string(p);
        EXPECT_LT(rates[i], c.server(i).max_generic_rate(c.rbar())) << opt::to_string(p);
        total += rates[i];
      }
      EXPECT_NEAR(total, lambda, 1e-6 * lambda) << opt::to_string(p) << " frac=" << frac;
    }
  }
}

TEST(Policies, ProportionalToCapacityWeights) {
  const auto c = model::paper_example_cluster();
  const double lambda = 10.0;
  const auto rates = opt::distribute(Policy::ProportionalToCapacity, c, Discipline::Fcfs, lambda);
  // Uncapped at this light load: rates proportional to m_i s_i.
  const double k0 = rates[0] / (c.server(0).size() * c.server(0).speed());
  for (std::size_t i = 1; i < c.size(); ++i) {
    const double ki = rates[i] / (c.server(i).size() * c.server(i).speed());
    EXPECT_NEAR(ki, k0, 1e-10);
  }
}

TEST(Policies, EqualSplitIsEqualUntilCapped) {
  const auto c = model::paper_example_cluster();
  const double lambda = 7.0;
  const auto rates = opt::distribute(Policy::EqualSplit, c, Discipline::Fcfs, lambda);
  for (double r : rates) EXPECT_NEAR(r, 1.0, 1e-10);
}

TEST(Policies, EqualSplitRedistributesWhenSmallServerSaturates) {
  // Server 0 can absorb at most 2*1.6 - 0.96 = 2.24; equal split of 35
  // over 7 servers would give 5 each.
  const auto c = model::paper_example_cluster();
  const double lambda = 35.0;
  const auto rates = opt::distribute(Policy::EqualSplit, c, Discipline::Fcfs, lambda);
  EXPECT_LT(rates[0], c.server(0).max_generic_rate(c.rbar()));
  double total = 0.0;
  for (double r : rates) total += r;
  EXPECT_NEAR(total, lambda, 1e-6 * lambda);
  // Big servers pick up the overflow.
  EXPECT_GT(rates[6], 5.0);
}

TEST(Policies, UtilizationBalancingEqualizesRho) {
  const auto c = model::paper_example_cluster();
  const double lambda = 20.0;
  const auto rates = opt::distribute(Policy::UtilizationBalancing, c, Discipline::Fcfs, lambda);
  const opt::ResponseTimeObjective obj(c, Discipline::Fcfs, lambda);
  const auto rho = obj.utilizations(rates);
  for (std::size_t i = 1; i < rho.size(); ++i) {
    EXPECT_NEAR(rho[i], rho[0], 1e-6);
  }
}

TEST(Policies, OptimalDominatesEveryBaseline) {
  const auto c = model::paper_example_cluster();
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const opt::LoadDistributionOptimizer solver(c, d);
    for (double frac : {0.3, 0.6, 0.9}) {
      const double lambda = frac * c.max_generic_rate();
      const double best = solver.optimize(lambda).response_time;
      for (Policy p : opt::all_policies()) {
        const double t = opt::policy_response_time(p, c, d, lambda);
        EXPECT_GE(t, best - 1e-9)
            << opt::to_string(p) << " frac=" << frac << " d=" << queue::to_string(d);
      }
    }
  }
}

TEST(Policies, GreedyIncrementalNearlyOptimal) {
  // The discretized greedy should land within a fraction of a percent.
  const auto c = model::paper_example_cluster();
  const double lambda = 0.5 * c.max_generic_rate();
  const double best =
      opt::LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(lambda).response_time;
  const double greedy =
      opt::policy_response_time(Policy::GreedyIncremental, c, Discipline::Fcfs, lambda);
  EXPECT_LT(greedy / best - 1.0, 5e-3);
}

TEST(Policies, EqualSplitPenaltyGrowsFromLightToModerateLoad) {
  // Ignoring heterogeneity hurts more as load grows -- up to the point
  // where the optimal T' itself diverges and the *ratio* can shrink
  // again, so the comparison stops at moderate load.
  const auto c = model::paper_example_cluster();
  const opt::LoadDistributionOptimizer solver(c, Discipline::Fcfs);
  double prev_penalty = -1.0;
  for (double frac : {0.15, 0.25, 0.35}) {
    const double lambda = frac * c.max_generic_rate();
    const double best = solver.optimize(lambda).response_time;
    const double t = opt::policy_response_time(Policy::EqualSplit, c, Discipline::Fcfs, lambda);
    const double penalty = t / best - 1.0;
    EXPECT_GT(penalty, prev_penalty) << "frac=" << frac;
    EXPECT_GE(penalty, 0.0);
    prev_penalty = penalty;
  }
}

TEST(Policies, RejectInfeasibleDemand) {
  const auto c = model::paper_example_cluster();
  EXPECT_THROW(
      (void)opt::distribute(Policy::EqualSplit, c, Discipline::Fcfs, c.max_generic_rate() * 1.01),
      std::invalid_argument);
}

}  // namespace
