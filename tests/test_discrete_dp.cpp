// DP-by-discretization solver: an independent route to the optimum that
// never touches derivatives or KKT conditions. Must agree with the
// paper's bisection solver as the grid refines.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/discrete_dp.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using opt::dp_distribution;
using queue::Discipline;

TEST(DiscreteDp, MatchesBisectionOnPaperExample) {
  const auto c = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto dp = dp_distribution(c, d, lambda, 3000);
    const auto bis = opt::LoadDistributionOptimizer(c, d).optimize(lambda);
    // T' is flat near the optimum, so the discrete value converges fast.
    EXPECT_NEAR(dp.response_time, bis.response_time, 2e-4 * bis.response_time)
        << queue::to_string(d);
    EXPECT_GE(dp.response_time, bis.response_time - 1e-9);  // bisection is the true min
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(dp.rates[i], bis.rates[i], 0.15) << "server " << i;
    }
  }
}

TEST(DiscreteDp, ConservesMass) {
  const auto c = model::paper_example_cluster();
  const auto dp = dp_distribution(c, Discipline::Fcfs, 23.52, 1000);
  const double total = std::accumulate(dp.rates.begin(), dp.rates.end(), 0.0);
  EXPECT_NEAR(total, 23.52, 1e-9);
  EXPECT_EQ(dp.units, 1000u);
}

TEST(DiscreteDp, RefinementImproves) {
  const auto c = model::paper_example_cluster();
  const double lambda = 23.52;
  const double coarse = dp_distribution(c, Discipline::Fcfs, lambda, 200).response_time;
  const double fine = dp_distribution(c, Discipline::Fcfs, lambda, 3000).response_time;
  const double best =
      opt::LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(lambda).response_time;
  EXPECT_LE(fine, coarse + 1e-12);
  EXPECT_LT(fine - best, coarse - best + 1e-12);
}

TEST(DiscreteDp, LightLoadLeavesSlowServersEmpty) {
  const auto c = model::paper_example_cluster();
  const auto dp = dp_distribution(c, Discipline::Fcfs, 0.5, 500);
  // At lambda' = 0.5 only the fastest server should carry load (the
  // continuous optimizer agrees).
  EXPECT_GT(dp.rates[0], 0.0);
  EXPECT_DOUBLE_EQ(dp.rates[6], 0.0);
}

TEST(DiscreteDp, RespectsPerServerSaturation) {
  // Force a regime where one server must cap out: tiny cluster, high load.
  const model::Cluster c(
      {model::BladeServer(1, 1.0, 0.5), model::BladeServer(8, 1.0, 0.5)}, 1.0);
  const double lambda = 0.9 * c.max_generic_rate();
  const auto dp = dp_distribution(c, Discipline::Fcfs, lambda, 1000);
  EXPECT_LT(dp.rates[0], c.server(0).max_generic_rate(1.0));
  EXPECT_LT(dp.rates[1], c.server(1).max_generic_rate(1.0));
}

TEST(DiscreteDp, Validation) {
  const auto c = model::paper_example_cluster();
  EXPECT_THROW((void)dp_distribution(c, Discipline::Fcfs, 0.0, 100), std::invalid_argument);
  EXPECT_THROW((void)dp_distribution(c, Discipline::Fcfs, 100.0, 100), std::invalid_argument);
  EXPECT_THROW((void)dp_distribution(c, Discipline::Fcfs, 10.0, 1), std::invalid_argument);
}

}  // namespace
