// MMPP-2 bursty arrivals: parameterization, mean-rate preservation, and
// the queueing impact of burstiness relative to the Poisson model.
#include <gtest/gtest.h>

#include <cmath>

#include "model/cluster.hpp"
#include "queueing/mmm.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/mmpp.hpp"
#include "sim/server_sim.hpp"

namespace {

using namespace blade;
using sim::MmppParams;
using sim::MmppSource;

TEST(MmppParams, WithMeanPreservesAverageRate) {
  for (double b : {1.0, 1.3, 1.9}) {
    const auto p = MmppParams::with_mean(5.0, b);
    EXPECT_NEAR(p.mean_rate(), 5.0, 1e-12) << "b=" << b;
    EXPECT_NEAR(p.burstiness(), b, 1e-12) << "b=" << b;
    EXPECT_GE(p.rate_quiet, 0.0);
  }
  EXPECT_THROW((void)MmppParams::with_mean(0.0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)MmppParams::with_mean(5.0, 0.9), std::invalid_argument);
  EXPECT_THROW((void)MmppParams::with_mean(5.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)MmppParams::with_mean(5.0, 1.5, 0.0), std::invalid_argument);
}

TEST(MmppSource, EmitsAtTheConfiguredMeanRate) {
  sim::Engine engine;
  sim::ResponseTimeCollector collector;
  std::uint64_t arrivals = 0;
  MmppSource src(engine, MmppParams::with_mean(3.0, 1.8), sim::ServiceDistribution::exponential(1.0),
                 sim::TaskClass::Generic, sim::RngStream(5, 0),
                 [&](sim::Task) { ++arrivals; });
  src.start();
  engine.run_until(20000.0);
  EXPECT_NEAR(static_cast<double>(arrivals) / 20000.0, 3.0, 0.1);
  EXPECT_EQ(src.emitted(), arrivals);
}

TEST(MmppSource, BurstinessOneIsPoisson) {
  // b = 1 collapses both states to the same rate; response times match
  // the M/M/m model.
  sim::Engine engine;
  sim::ResponseTimeCollector collector(500.0);
  sim::ServerSim server(engine, 2, 1.0, sim::SchedulingMode::Fcfs, collector);
  MmppSource src(engine, MmppParams::with_mean(1.4, 1.0), sim::ServiceDistribution::exponential(1.0),
                 sim::TaskClass::Generic, sim::RngStream(7, 1),
                 [&](sim::Task t) { server.arrive(t); });
  src.start();
  engine.run_until(60000.0);
  const double expected = queue::MMmQueue(2, 1.0).mean_response_time(1.4);
  EXPECT_NEAR(collector.generic().mean(), expected, 0.07 * expected);
}

TEST(MmppSource, BurstinessInflatesResponseTimes) {
  // Same mean rate, increasing burstiness: mean response must grow.
  double prev = 0.0;
  for (double b : {1.0, 1.5, 1.9}) {
    sim::Engine engine;
    sim::ResponseTimeCollector collector(500.0);
    sim::ServerSim server(engine, 2, 1.0, sim::SchedulingMode::Fcfs, collector);
    MmppSource src(engine, MmppParams::with_mean(1.4, b),
                   sim::ServiceDistribution::exponential(1.0), sim::TaskClass::Generic,
                   sim::RngStream(11, 2), [&](sim::Task t) { server.arrive(t); });
    src.start();
    engine.run_until(60000.0);
    const double mean = collector.generic().mean();
    EXPECT_GT(mean, prev) << "b=" << b;
    prev = mean;
  }
}

TEST(MmppSource, Validation) {
  sim::Engine engine;
  MmppParams bad;
  bad.rate_quiet = 2.0;
  bad.rate_busy = 1.0;  // busy < quiet
  bad.sojourn_quiet = bad.sojourn_busy = 1.0;
  EXPECT_THROW(MmppSource(engine, bad, sim::ServiceDistribution::exponential(1.0),
                          sim::TaskClass::Generic, sim::RngStream(1, 0), [](sim::Task) {}),
               std::invalid_argument);
  MmppParams ok = MmppParams::with_mean(1.0, 1.5);
  EXPECT_THROW(
      MmppSource(engine, ok, sim::ServiceDistribution::exponential(1.0),
                 sim::TaskClass::Generic, sim::RngStream(1, 0), MmppSource::Sink{}),
      std::invalid_argument);
}

}  // namespace
