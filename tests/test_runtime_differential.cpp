// Differential and metamorphic checks for the runtime controller:
//
//   * a stationary Poisson replay must land on the static optimize()
//     split (the controller is a no-op at steady state);
//   * doubling every speed while halving every timescale must leave the
//     controller's decisions invariant (speed-scaling metamorphic);
//   * the reference failure trace (diurnal load, biggest server lost for
//     the middle third) must reconverge to each regime's static optimum
//     within five estimator half-lives and shed only while infeasible.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/objective.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "runtime/controller.hpp"
#include "runtime/replay.hpp"

namespace {

using namespace blade;

double golden_u(std::uint64_t k) {
  return std::fmod(static_cast<double>(k) * 0.61803398874989485, 1.0);
}

TEST(RuntimeDifferential, StationaryPoissonReplayMatchesStaticOptimum) {
  const auto cluster = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();

  runtime::ReplayTrace trace;
  trace.horizon = 1200.0;
  trace.seed = 42;
  trace.events.push_back({.time = 0.0, .kind = runtime::ReplayEvent::Kind::Rate, .rate = lambda});

  runtime::ControllerConfig cfg;
  cfg.half_life = 100.0;  // EWMA rel. std. ~ sqrt(alpha / 2 lambda) ~ 1.2%
  const auto res = runtime::replay(cluster, cfg, trace);

  // Steady state at half the saturation rate: nothing is ever shed.
  EXPECT_EQ(res.stats.shed, 0u);
  EXPECT_EQ(res.final_shed_probability, 0.0);
  EXPECT_EQ(res.stats.failures, 0u);
  EXPECT_GT(res.stats.resolves, 0u);
  EXPECT_GT(res.stats.skipped_by_hysteresis, 0u);

  const auto sol = opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs)
                       .optimize(lambda);
  ASSERT_EQ(res.final_fractions.size(), cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_NEAR(res.final_fractions[i], sol.rates[i] / lambda, 0.03) << i;
  }

  // The split the controller converged to costs within 1% of the optimal
  // mean response time at the true rate (T' is flat near the optimum, so
  // this absorbs the estimator noise the fraction check tolerates).
  std::vector<double> rates(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) rates[i] = lambda * res.final_fractions[i];
  const opt::ResponseTimeObjective obj(cluster, queue::Discipline::Fcfs, lambda);
  EXPECT_LE(obj.value(rates), 1.01 * sol.response_time);

  // And the simulated generic response time agrees with the model at the
  // usual Monte-Carlo resolution (the replay ran ~28k generic tasks).
  EXPECT_NEAR(res.sim.generic_mean_response, sol.response_time, 0.15 * sol.response_time);
}

// Drives a controller with deterministic arrivals; all timing is derived
// from `scale` so the scaled run is the base run with c = 2 applied.
struct DriveResult {
  std::vector<std::vector<double>> fractions;  // per checkpoint
  std::vector<double> shed;                    // per checkpoint
  runtime::ControllerStats stats;
};

DriveResult drive(const model::Cluster& cluster, double half_life, double lambda, double scale) {
  runtime::ControllerConfig cfg;
  cfg.half_life = half_life / scale;
  cfg.check_interval = 8;
  cfg.min_arrivals = 8;
  runtime::Controller ctrl(cluster, cfg);

  DriveResult out;
  double t_base = 0.0;
  const double gap = 1.0 / lambda;  // base-time gap; scaled run divides by `scale`
  std::uint64_t k = 0;
  for (int block = 0; block < 8; ++block) {
    // Swing the load so re-solves and hysteresis skips both happen.
    const double mult = (block % 2 == 0) ? 1.0 : 0.6;
    for (int j = 0; j < 500; ++j) {
      t_base += gap / mult;
      ctrl.on_generic_arrival(t_base / scale, golden_u(++k));
    }
    ctrl.resolve_now(t_base / scale);
    out.fractions.push_back(ctrl.routing_fractions());
    out.shed.push_back(ctrl.shed_probability());
  }
  out.stats = ctrl.stats();
  return out;
}

TEST(RuntimeDifferential, MetamorphicSpeedScalingInvariance) {
  // Scaling every speed (and hence every special preload) by c while
  // compressing time by c changes nothing the controller can observe:
  // rates scale by c, capacities scale by c, all ratios are preserved.
  // With c = 2 the scaling is exact in floating point, so the decision
  // sequence (solves, skips, sheds) must match event for event.
  const std::vector<unsigned> sizes = {2, 3, 4};
  const std::vector<double> base_speeds = {1.0, 1.4, 0.8};
  std::vector<double> fast_speeds = base_speeds;
  for (double& s : fast_speeds) s *= 2.0;
  const auto base = model::make_cluster(sizes, base_speeds, 1.0, 0.25);
  const auto fast = model::make_cluster(sizes, fast_speeds, 1.0, 0.25);

  const double lambda = 0.6 * base.max_generic_rate();
  const auto a = drive(base, 8.0, lambda, 1.0);
  const auto b = drive(fast, 8.0, lambda, 2.0);

  // Identical decision counters: the two runs saw "the same" system.
  EXPECT_EQ(a.stats.resolves, b.stats.resolves);
  EXPECT_EQ(a.stats.skipped_by_hysteresis, b.stats.skipped_by_hysteresis);
  EXPECT_EQ(a.stats.admitted, b.stats.admitted);
  EXPECT_EQ(a.stats.shed, b.stats.shed);
  EXPECT_EQ(a.stats.publications, b.stats.publications);

  ASSERT_EQ(a.fractions.size(), b.fractions.size());
  for (std::size_t c = 0; c < a.fractions.size(); ++c) {
    EXPECT_EQ(a.shed[c], b.shed[c]) << "checkpoint " << c;
    ASSERT_EQ(a.fractions[c].size(), b.fractions[c].size());
    for (std::size_t i = 0; i < a.fractions[c].size(); ++i) {
      // The splits agree to solver tolerance (the optimum itself is
      // scale-invariant; only the iteration path can differ).
      EXPECT_NEAR(a.fractions[c][i], b.fractions[c][i], 1e-6)
          << "checkpoint " << c << " server " << i;
    }
  }
}

TEST(RuntimeDifferential, ReferenceTraceReconvergesWithinFiveHalfLives) {
  const auto cluster = model::paper_example_cluster();
  const std::size_t n = cluster.size();
  const double lam_max = cluster.max_generic_rate();
  const double rbar = cluster.rbar();

  // The reference_failure_trace scenario, driven directly so the
  // controller can be probed mid-flight: six 1000-unit rate epochs, the
  // biggest server (index 6) lost over the middle third.
  const double shape[] = {0.35, 0.55, 0.80, 0.80, 0.55, 0.35};
  const double segment = 1000.0;
  const std::size_t biggest = 6;
  ASSERT_GT(cluster.server(biggest).capacity(rbar), cluster.server(5).capacity(rbar));

  runtime::ControllerConfig cfg;
  cfg.half_life = 60.0;
  runtime::Controller ctrl(cluster, cfg);

  // Surviving-topology saturation rate and admission target during the
  // outage: the 0.80 peak exceeds the ceiling, the 0.55/0.35 epochs do not.
  const double cap_lost =
      cluster.server(biggest).capacity(rbar) - cluster.server(biggest).special_rate();
  const double lam_max_out = lam_max - cap_lost;
  const double target_out = cfg.utilization_ceiling * lam_max_out;
  ASSERT_LT(target_out, 0.80 * lam_max);  // peak is infeasible without the server
  ASSERT_GT(target_out, 0.55 * lam_max);  // shoulders stay feasible

  std::vector<model::BladeServer> surviving;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != biggest) surviving.push_back(cluster.server(i));
  }
  const model::Cluster out_cluster(surviving, rbar);

  double t = 0.0;
  std::uint64_t k = 0;
  std::uint64_t shed_before_outage = 0;
  std::uint64_t shed_after_outage = 0;
  const double probe_offset = 5.0 * cfg.half_life;

  for (int seg = 0; seg < 6; ++seg) {
    const double lambda = shape[seg] * lam_max;
    const double seg_start = segment * static_cast<double>(seg);
    const double seg_end = seg_start + segment;
    const bool outage = seg == 2 || seg == 3;
    if (seg == 2) {
      shed_before_outage = ctrl.stats().shed;
      ctrl.on_failure(seg_start, biggest);
    }
    if (seg == 4) {
      ctrl.on_recovery(seg_start, biggest);
      shed_after_outage = ctrl.stats().shed;
    }

    bool probed = false;
    const double gap = 1.0 / lambda;
    while (t + gap <= seg_end) {
      t += gap;
      ctrl.on_generic_arrival(t, golden_u(++k));
      if (!probed && t >= seg_start + probe_offset) {
        probed = true;
        ctrl.resolve_now(t);

        // Five half-lives into the regime: the estimate has re-locked.
        const double lam_hat = ctrl.last_solved_lambda();
        EXPECT_NEAR(lam_hat, lambda, 0.02 * lambda) << "segment " << seg;

        const auto f = ctrl.routing_fractions();
        ASSERT_EQ(f.size(), n) << "segment " << seg;
        const double shed = ctrl.shed_probability();

        if (outage) {
          EXPECT_EQ(f[biggest], 0.0) << "segment " << seg;
          // Admission sheds exactly down to the ceiling on the surviving
          // capacity (lam-hat noise moves the probability a little).
          EXPECT_NEAR(shed, 1.0 - target_out / lambda, 0.03) << "segment " << seg;
          // The admitted load is placed within 1% of the static optimum
          // for the surviving topology at the admission target.
          const auto sol = opt::LoadDistributionOptimizer(out_cluster, queue::Discipline::Fcfs)
                               .optimize(target_out);
          std::vector<double> rates(n);
          for (std::size_t i = 0; i < n; ++i) rates[i] = target_out * f[i];
          const opt::ResponseTimeObjective obj(cluster, queue::Discipline::Fcfs, target_out);
          EXPECT_LE(obj.value(rates), 1.01 * sol.response_time) << "segment " << seg;
        } else {
          EXPECT_EQ(shed, 0.0) << "segment " << seg;
          EXPECT_GT(f[biggest], 0.0) << "segment " << seg;
          // Within 1% of the static optimum at the regime's true rate.
          const auto sol = opt::LoadDistributionOptimizer(cluster, queue::Discipline::Fcfs)
                               .optimize(lambda);
          std::vector<double> rates(n);
          for (std::size_t i = 0; i < n; ++i) rates[i] = lambda * f[i];
          const opt::ResponseTimeObjective obj(cluster, queue::Discipline::Fcfs, lambda);
          EXPECT_LE(obj.value(rates), 1.01 * sol.response_time) << "segment " << seg;
        }
      }
    }
    t = seg_end;
    EXPECT_TRUE(probed) << "segment " << seg;
  }

  // Shedding is confined to the outage: nothing before it, nothing after.
  EXPECT_EQ(shed_before_outage, 0u);
  EXPECT_GT(shed_after_outage, shed_before_outage);
  EXPECT_EQ(ctrl.stats().shed, shed_after_outage);
  EXPECT_EQ(ctrl.stats().failures, 1u);
  EXPECT_EQ(ctrl.stats().recoveries, 1u);
}

}  // namespace
