// model module: BladeServer, Cluster, and the paper configuration
// factories (every group behind Figs. 4-15 must have the stated totals).
#include <gtest/gtest.h>

#include <cmath>

#include "model/blade_server.hpp"
#include "model/cluster.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade::model;

TEST(BladeServer, Validation) {
  EXPECT_THROW(BladeServer(0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BladeServer(2, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BladeServer(2, 1.0, -0.1), std::invalid_argument);
}

TEST(BladeServer, DerivedQuantities) {
  const BladeServer s(4, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_service_time(1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.capacity(1.0), 8.0);
  EXPECT_DOUBLE_EQ(s.special_utilization(1.0), 0.125);
  EXPECT_DOUBLE_EQ(s.max_generic_rate(1.0), 7.0);
  EXPECT_THROW((void)s.mean_service_time(0.0), std::invalid_argument);
}

TEST(BladeServer, RbarScalesServiceTime) {
  const BladeServer s(2, 1.5, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_service_time(3.0), 2.0);
  EXPECT_DOUBLE_EQ(s.capacity(3.0), 1.0);
}

TEST(Cluster, Validation) {
  EXPECT_THROW(Cluster({}, 1.0), std::invalid_argument);
  EXPECT_THROW(Cluster({BladeServer(1, 1.0, 0.0)}, 0.0), std::invalid_argument);
  // A server saturated by its special stream is rejected at cluster level.
  EXPECT_THROW(Cluster({BladeServer(1, 1.0, 1.5)}, 1.0), std::invalid_argument);
}

TEST(Cluster, Aggregates) {
  const Cluster c({BladeServer(2, 1.0, 0.5), BladeServer(3, 2.0, 1.0)}, 1.0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.total_blades(), 5u);
  EXPECT_DOUBLE_EQ(c.total_speed(), 8.0);
  EXPECT_DOUBLE_EQ(c.total_capacity(), 8.0);
  EXPECT_DOUBLE_EQ(c.total_special_rate(), 1.5);
  EXPECT_DOUBLE_EQ(c.max_generic_rate(), 6.5);
  EXPECT_FALSE(c.all_single_blade());
  const auto xs = c.mean_service_times();
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_DOUBLE_EQ(xs[0], 1.0);
  EXPECT_DOUBLE_EQ(xs[1], 0.5);
  EXPECT_FALSE(c.describe().empty());
}

TEST(Cluster, QueuesCarryDiscipline) {
  const Cluster c({BladeServer(2, 1.0, 0.5)}, 1.0);
  const auto qs = c.queues(blade::queue::Discipline::SpecialPriority);
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_EQ(qs[0].discipline(), blade::queue::Discipline::SpecialPriority);
  EXPECT_EQ(qs[0].blades(), 2u);
  EXPECT_DOUBLE_EQ(qs[0].special_rate(), 0.5);
}

TEST(MakeCluster, PreloadConvention) {
  // lambda''_i = y m_i s_i / rbar.
  const auto c = make_cluster({2, 4}, {1.5, 1.0}, 2.0, 0.3);
  EXPECT_NEAR(c.server(0).special_rate(), 0.3 * 2 * 1.5 / 2.0, 1e-14);
  EXPECT_NEAR(c.server(1).special_rate(), 0.3 * 4 * 1.0 / 2.0, 1e-14);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(c.server(i).special_utilization(2.0), 0.3, 1e-14);
  }
  EXPECT_THROW((void)make_cluster({1}, {1.0, 2.0}, 1.0, 0.3), std::invalid_argument);
  EXPECT_THROW((void)make_cluster({1}, {1.0}, 1.0, 1.0), std::invalid_argument);
}

TEST(PaperConfigs, SizeGroupsTotals) {
  const auto groups = size_groups();
  ASSERT_EQ(groups.size(), 5u);
  const unsigned totals[5] = {49, 53, 56, 59, 63};
  for (std::size_t g = 0; g < 5; ++g) {
    EXPECT_EQ(groups[g].cluster.total_blades(), totals[g]) << groups[g].name;
    EXPECT_EQ(groups[g].cluster.size(), 7u);
  }
}

TEST(PaperConfigs, SpeedGroupsSweepBaseSpeed) {
  const auto groups = speed_groups();
  ASSERT_EQ(groups.size(), 5u);
  // First group: s = 1.5 so s_1 = 1.4; last: s = 1.9 so s_1 = 1.8.
  EXPECT_NEAR(groups[0].cluster.server(0).speed(), 1.4, 1e-12);
  EXPECT_NEAR(groups[4].cluster.server(0).speed(), 1.8, 1e-12);
}

TEST(PaperConfigs, RequirementGroupsSweepRbar) {
  const auto groups = requirement_groups();
  ASSERT_EQ(groups.size(), 5u);
  EXPECT_NEAR(groups[0].cluster.rbar(), 0.8, 1e-12);
  EXPECT_NEAR(groups[4].cluster.rbar(), 1.2, 1e-12);
}

TEST(PaperConfigs, SpecialRateGroupsSweepPreload) {
  const auto groups = special_rate_groups();
  ASSERT_EQ(groups.size(), 5u);
  const double fractions[5] = {0.20, 0.25, 0.30, 0.35, 0.40};
  for (std::size_t g = 0; g < 5; ++g) {
    const auto& c = groups[g].cluster;
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(c.server(i).special_utilization(c.rbar()), fractions[g], 1e-12);
    }
  }
}

TEST(PaperConfigs, SizeHeterogeneityGroupsShareTotals) {
  const auto groups = size_heterogeneity_groups();
  ASSERT_EQ(groups.size(), 5u);
  for (const auto& g : groups) {
    EXPECT_EQ(g.cluster.total_blades(), 56u) << g.name;
    // Same total special rate 21.84 in every group (paper Sec. 5).
    EXPECT_NEAR(g.cluster.total_special_rate(), 21.84, 1e-10) << g.name;
    for (const auto& s : g.cluster.servers()) EXPECT_DOUBLE_EQ(s.speed(), 1.3);
  }
}

TEST(PaperConfigs, SpeedHeterogeneityGroupsShareTotals) {
  const auto groups = speed_heterogeneity_groups();
  ASSERT_EQ(groups.size(), 5u);
  for (const auto& g : groups) {
    EXPECT_NEAR(g.cluster.total_speed(), 72.8, 1e-10) << g.name;
    EXPECT_NEAR(g.cluster.total_special_rate(), 21.84, 1e-10) << g.name;
    for (const auto& s : g.cluster.servers()) EXPECT_EQ(s.size(), 8u);
  }
}

TEST(PaperConfigs, AllGroupsShareSaturationWhenCapacityMatches) {
  // fig12/fig14 families: equal capacity => equal lambda'_max.
  for (const auto& family : {size_heterogeneity_groups(), speed_heterogeneity_groups()}) {
    const double ref = family.front().cluster.max_generic_rate();
    for (const auto& g : family) {
      EXPECT_NEAR(g.cluster.max_generic_rate(), ref, 1e-10) << g.name;
    }
  }
}

}  // namespace
