// CLI layer: spec parsing (round trips, defaults, error reporting) and
// the command functions including the argv driver.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/app.hpp"
#include "cli/bench_gate.hpp"
#include "cli/spec.hpp"
#include "obs/build_info.hpp"
#include "util/json.hpp"

namespace {

using namespace blade;
using cli::parse_cluster_spec;
using cli::SpecError;

constexpr const char* kSpec = R"(
# demo cluster
rbar = 1.0
preload = 0.3
server 2 1.6
server 4 1.5
server 6 1.4 2.52   # explicit special rate
)";

TEST(Spec, ParsesServersAndDefaults) {
  const auto c = parse_cluster_spec(kSpec);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.rbar(), 1.0);
  EXPECT_EQ(c.server(0).size(), 2u);
  EXPECT_DOUBLE_EQ(c.server(0).speed(), 1.6);
  // preload 0.3: lambda'' = 0.3 * 2 * 1.6 = 0.96.
  EXPECT_NEAR(c.server(0).special_rate(), 0.96, 1e-12);
  // Explicit rate wins over the preload default.
  EXPECT_NEAR(c.server(2).special_rate(), 2.52, 1e-12);
}

TEST(Spec, RbarDirective) {
  const auto c = parse_cluster_spec("rbar = 2.0\npreload = 0\nserver 1 1.0\n");
  EXPECT_DOUBLE_EQ(c.rbar(), 2.0);
  EXPECT_DOUBLE_EQ(c.server(0).special_rate(), 0.0);
}

TEST(Spec, CommentsAndBlankLinesIgnored) {
  const auto c = parse_cluster_spec("\n# hi\n  \nserver 1 1.0 0.1  # tail comment\n");
  EXPECT_EQ(c.size(), 1u);
}

TEST(Spec, ErrorsNameTheLine) {
  try {
    (void)parse_cluster_spec("rbar = 1.0\nserver 2\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Spec, RejectsBadInput) {
  EXPECT_THROW((void)parse_cluster_spec(""), SpecError);
  EXPECT_THROW((void)parse_cluster_spec("frobnicate 1 2\n"), SpecError);
  EXPECT_THROW((void)parse_cluster_spec("server 0 1.0 0.0\n"), SpecError);
  EXPECT_THROW((void)parse_cluster_spec("server 2 -1.0 0.0\n"), SpecError);
  EXPECT_THROW((void)parse_cluster_spec("server 2 1.0 -0.5\n"), SpecError);
  EXPECT_THROW((void)parse_cluster_spec("server 2 1.0\n"), SpecError);  // no preload default
  EXPECT_THROW((void)parse_cluster_spec("preload = 1.5\nserver 2 1.0\n"), SpecError);
  EXPECT_THROW((void)parse_cluster_spec("rbar = x\nserver 1 1 0\n"), SpecError);
  EXPECT_THROW((void)parse_cluster_spec("server 2.5 1.0 0.0\n"), SpecError);
}

TEST(Spec, RoundTripsThroughToSpec) {
  const auto c = parse_cluster_spec(kSpec);
  const auto again = parse_cluster_spec(cli::to_spec(c));
  ASSERT_EQ(again.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(again.server(i).size(), c.server(i).size());
    EXPECT_DOUBLE_EQ(again.server(i).speed(), c.server(i).speed());
    EXPECT_NEAR(again.server(i).special_rate(), c.server(i).special_rate(), 1e-12);
  }
}

TEST(Spec, LoadFromMissingFileFails) {
  EXPECT_THROW((void)cli::load_cluster_spec("/nonexistent/path.spec"), SpecError);
}

TEST(App, OptimizeReportContainsSolution) {
  const auto c = parse_cluster_spec(kSpec);
  const auto out = cli::run_optimize(c, 8.0, {});
  EXPECT_NE(out.find("minimized T'"), std::string::npos);
  EXPECT_NE(out.find("fcfs"), std::string::npos);
  const cli::CommonOptions prio{queue::Discipline::SpecialPriority, 1.0};
  EXPECT_NE(cli::run_optimize(c, 8.0, prio).find("priority"), std::string::npos);
}

TEST(App, OptimizeRejectsInfeasibleLambda) {
  const auto c = parse_cluster_spec(kSpec);
  EXPECT_THROW((void)cli::run_optimize(c, 1000.0, {}), std::invalid_argument);
  EXPECT_THROW((void)cli::run_optimize(c, 0.0, {}), std::invalid_argument);
}

TEST(App, SweepEmitsCsvRows) {
  const auto c = parse_cluster_spec(kSpec);
  const auto out = cli::run_sweep(c, 2.0, 10.0, 5, {});
  EXPECT_NE(out.find("lambda,T"), std::string::npos);
  // Header + 5 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
  EXPECT_THROW((void)cli::run_sweep(c, 5.0, 2.0, 5, {}), std::invalid_argument);
  EXPECT_THROW((void)cli::run_sweep(c, 2.0, 10.0, 1, {}), std::invalid_argument);
}

TEST(App, ValidateReportsCi) {
  const auto c = parse_cluster_spec(kSpec);
  const auto out = cli::run_validate(c, 6.0, 3, 1, {});
  EXPECT_NE(out.find("simulated T'"), std::string::npos);
  EXPECT_NE(out.find("95% CI"), std::string::npos);
  cli::CommonOptions scv;
  scv.service_scv = 2.0;
  EXPECT_THROW((void)cli::run_validate(c, 6.0, 3, 1, scv), std::invalid_argument);
}

TEST(App, SensitivityReportHasAllKnobs) {
  const auto c = parse_cluster_spec(kSpec);
  const auto out = cli::run_sensitivity(c, 6.0, {});
  EXPECT_NE(out.find("dT'/dlambda'"), std::string::npos);
  EXPECT_NE(out.find("one extra blade"), std::string::npos);
}

TEST(App, PercentilesReportPerServerQuantiles) {
  const auto c = parse_cluster_spec(kSpec);
  const auto out = cli::run_percentiles(c, 8.0, {});
  EXPECT_NE(out.find("p99 T"), std::string::npos);
  EXPECT_NE(out.find("P(wait)"), std::string::npos);
  cli::CommonOptions prio{queue::Discipline::SpecialPriority, 1.0};
  EXPECT_THROW((void)cli::run_percentiles(c, 8.0, prio), std::invalid_argument);
}

TEST(App, AllocateRepacksBlades) {
  const auto c = parse_cluster_spec(kSpec);
  const auto out = cli::run_allocate(c, 6.0, {});
  EXPECT_NE(out.find("redesigned blades per chassis"), std::string::npos);
  EXPECT_NE(out.find("current layout"), std::string::npos);
}

TEST(App, TraceComparesAdaptiveAndStatic) {
  const auto c = parse_cluster_spec(kSpec);
  const auto out = cli::run_trace(c, 3.0, 9.0, {});
  EXPECT_NE(out.find("adaptive"), std::string::npos);
  EXPECT_NE(out.find("static split"), std::string::npos);
}

TEST(App, ScvChangesTheAnswer) {
  const auto c = parse_cluster_spec(kSpec);
  cli::CommonOptions det;
  det.service_scv = 0.0;
  const auto exp_out = cli::run_optimize(c, 8.0, {});
  const auto det_out = cli::run_optimize(c, 8.0, det);
  EXPECT_NE(exp_out, det_out);
}

class CliDriver : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cli_driver_demo.spec";
    std::ofstream(path_) << kSpec;
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CliDriver, DispatchesOptimize) {
  const auto out = cli::run_cli({"optimize", path_, "8.0"});
  EXPECT_NE(out.find("minimized T'"), std::string::npos);
}

TEST_F(CliDriver, DispatchesSweepWithPriorityFlag) {
  const auto out = cli::run_cli({"sweep", path_, "2", "9", "4", "--priority"});
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST_F(CliDriver, FlagsParsed) {
  const auto out = cli::run_cli({"validate", path_, "6.0", "--reps", "3", "--seed", "42"});
  EXPECT_NE(out.find("3 replications"), std::string::npos);
}

TEST(App, FiguresCommandFormats) {
  const auto csv = cli::run_figure(12, "csv", 6);
  EXPECT_NE(csv.find("series,lambda',T'"), std::string::npos);
  const auto json = cli::run_figure(12, "json", 6);
  EXPECT_NE(json.find("\"id\":\"fig12\""), std::string::npos);
  const auto art = cli::run_figure(12, "ascii", 6);
  EXPECT_NE(art.find("legend:"), std::string::npos);
  EXPECT_THROW((void)cli::run_figure(12, "xml", 6), std::invalid_argument);
  EXPECT_THROW((void)cli::run_figure(3, "csv", 6), std::invalid_argument);
}

TEST_F(CliDriver, DispatchesPercentilesAllocateTrace) {
  EXPECT_NE(cli::run_cli({"percentiles", path_, "6.0"}).find("p99"), std::string::npos);
  EXPECT_NE(cli::run_cli({"allocate", path_, "6.0"}).find("redesigned"), std::string::npos);
  EXPECT_NE(cli::run_cli({"trace", path_, "3", "9"}).find("adaptive"), std::string::npos);
}

TEST_F(CliDriver, DispatchesConsolidate) {
  const auto out = cli::run_cli({"consolidate", path_, "3", "8", "1.5"});
  EXPECT_NE(out.find("blade-time switched off"), std::string::npos);
  EXPECT_NE(out.find("active blades"), std::string::npos);
}

TEST_F(CliDriver, BadInvocationsThrowWithUsage) {
  EXPECT_THROW((void)cli::run_cli({}), std::invalid_argument);
  EXPECT_THROW((void)cli::run_cli({"bogus", path_, "1"}), std::invalid_argument);
  EXPECT_THROW((void)cli::run_cli({"optimize", path_}), std::invalid_argument);
  EXPECT_THROW((void)cli::run_cli({"optimize", path_, "8.0", "--wat"}), std::invalid_argument);
  EXPECT_THROW((void)cli::run_cli({"optimize", "/missing.spec", "8.0"}), cli::SpecError);
}

TEST(App, VersionFlagPrintsBuildInfo) {
  // --version short-circuits the command dispatch entirely.
  const auto out = cli::run_cli({"--version"});
  EXPECT_NE(out.find("bladecloud"), std::string::npos);
  EXPECT_NE(out.find("BLADE_OBS"), std::string::npos);
  EXPECT_NE(out.find(obs::build_info().git_hash), std::string::npos);
}

TEST_F(CliDriver, MetricsOutWritesParseableJson) {
  const std::string mpath = ::testing::TempDir() + "cli_metrics.json";
  const auto out = cli::run_cli({"optimize", path_, "8.0", "--metrics-out", mpath});
  EXPECT_NE(out.find("minimized T'"), std::string::npos);
  std::ifstream in(mpath);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = util::parse_json(buf.str());
  EXPECT_EQ(doc.at("build").at("obs").boolean, obs::build_info().obs_enabled);
  if (obs::build_info().obs_enabled) {
    bool saw_solves = false;
    for (const auto& m : doc.at("metrics").array) {
      if (m.at("name").string == "optimizer.solves") saw_solves = true;
    }
    EXPECT_TRUE(saw_solves);
  }
  std::remove(mpath.c_str());
}

TEST_F(CliDriver, MetricsFormatSelectsRenderer) {
  const std::string mpath = ::testing::TempDir() + "cli_metrics.csv";
  (void)cli::run_cli({"optimize", path_, "8.0", "--metrics-out", mpath, "--metrics-format",
                      "csv"});
  std::ifstream in(mpath);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "name,kind,count,value,sum,mean,p50,p90,p99");
  std::remove(mpath.c_str());
  EXPECT_THROW((void)cli::run_cli({"optimize", path_, "8.0", "--metrics-out", mpath,
                                   "--metrics-format", "yaml"}),
               std::invalid_argument);
}

TEST_F(CliDriver, VerboseFlagStillReturnsTheReport) {
  // --verbose routes solver summaries to stderr; the report is unchanged.
  const auto quiet = cli::run_cli({"optimize", path_, "8.0"});
  const auto loud = cli::run_cli({"optimize", path_, "8.0", "--verbose"});
  EXPECT_EQ(quiet, loud);
}

TEST_F(CliDriver, MetricsOutDashAppendsToReport) {
  const auto out = cli::run_cli({"optimize", path_, "8.0", "--metrics-out", "-"});
  EXPECT_NE(out.find("minimized T'"), std::string::npos);
  // The JSON rendering rides the report itself instead of a file.
  const std::size_t json_at = out.find("{\"build\":");
  ASSERT_NE(json_at, std::string::npos);
  const auto doc = util::parse_json(out.substr(json_at));
  EXPECT_EQ(doc.at("build").at("obs").boolean, obs::build_info().obs_enabled);
}

class CliServeReplay : public CliDriver {
 protected:
  void SetUp() override {
    CliDriver::SetUp();
    trace_path_ = ::testing::TempDir() + "cli_serve.trace";
    std::ofstream(trace_path_) << "horizon 300\nseed 7\nrate 0 4.0\nrate 100 7.0\n"
                                  "fail 150 2\nrecover 200 2\n";
  }
  void TearDown() override {
    std::remove(trace_path_.c_str());
    CliDriver::TearDown();
  }
  std::string trace_path_;
};

TEST_F(CliServeReplay, SloTargetPrintsEpochLinesAndSummary) {
  const auto out = cli::run_cli({"serve-replay", path_, trace_path_, "--chaos-profile", "none",
                                 "--slo-target", "5.0", "--slo-epochs", "4"});
  std::size_t epoch_lines = 0;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("slo epoch ", 0) == 0) ++epoch_lines;
  }
  EXPECT_EQ(epoch_lines, 4u);
  EXPECT_NE(out.find("slo epoch 1/4"), std::string::npos);
  EXPECT_NE(out.find("objective breach"), std::string::npos);
}

TEST_F(CliServeReplay, RecorderOutWritesJsonlDump) {
  const std::string dump_path = ::testing::TempDir() + "cli_serve.jsonl";
  const auto out = cli::run_cli({"serve-replay", path_, trace_path_, "--chaos-profile", "none",
                                 "--recorder-out", dump_path, "--recorder-capacity", "2048"});
  EXPECT_NE(out.find("flight recorder"), std::string::npos);
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const auto doc = util::parse_json(header);
  EXPECT_EQ(doc.at("schema").string, "blade.recorder.v1");
  std::size_t events = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    (void)util::parse_json(line);  // every event line is valid JSON
    ++events;
  }
  if (obs::build_info().obs_enabled) {
    // The controller publishes at least once per rate epoch, so an
    // instrumented build always captures events.
    EXPECT_GT(events, 0u);
  }
  std::remove(dump_path.c_str());
}

TEST_F(CliServeReplay, RecorderOutJsonWritesChromeTrace) {
  const std::string dump_path = ::testing::TempDir() + "cli_serve_trace.json";
  (void)cli::run_cli({"serve-replay", path_, trace_path_, "--chaos-profile", "none",
                      "--recorder-out", dump_path});
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = util::parse_json(buf.str());
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  // Track metadata is always present; in instrumented builds the solves
  // and mode transitions ride the same array.
  EXPECT_FALSE(doc.at("traceEvents").array.empty());
  std::remove(dump_path.c_str());
}

TEST_F(CliServeReplay, SloFlagValidation) {
  EXPECT_THROW((void)cli::run_cli({"serve-replay", path_, trace_path_, "--slo-target", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)cli::run_cli({"serve-replay", path_, trace_path_, "--slo-epochs", "0"}),
               std::invalid_argument);
}

// --- the bench_check gate (cli/bench_gate.hpp) ----------------------------

class BenchGate : public ::testing::Test {
 protected:
  /// Writes a minimal BENCH_*.json export with one counter and one timer.
  std::string write_export(const char* name, double routed, double seconds) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << R"({"metrics":[{"name":"runtime.shard.routed","count":)" << routed
        << R"(},{"name":"runtime.shard.bench.route_seconds","count":3,"sum":)" << seconds
        << "}]}";
    return path;
  }

  int run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return cli::run_bench_check(args, out_, err_);
  }

  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(BenchGate, MaxRatioModePassesAndFails) {
  const std::string base = write_export("gate_base.json", 100.0, 1.0);
  const std::string good = write_export("gate_good.json", 150.0, 1.0);  // 1.5x <= 2x
  const std::string bad = write_export("gate_bad.json", 300.0, 1.0);    // 3x > 2x
  EXPECT_EQ(run({base, good, "runtime.shard.routed",
                 "runtime.shard.bench.route_seconds:sum", "2.0"}),
            0);
  EXPECT_NE(out_.str().find("limit"), std::string::npos);
  EXPECT_NE(out_.str().find("bench_check: OK"), std::string::npos);
  EXPECT_EQ(run({base, bad, "runtime.shard.routed",
                 "runtime.shard.bench.route_seconds:sum", "2.0"}),
            1);
  EXPECT_NE(err_.str().find("regressed beyond"), std::string::npos);
  std::remove(base.c_str());
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST_F(BenchGate, MinRatioModeIsAThroughputFloor) {
  const std::string base = write_export("gate_floor_base.json", 1000.0, 1.0);
  const std::string fast = write_export("gate_floor_fast.json", 900.0, 1.0);  // 0.9x >= 0.4x
  const std::string slow = write_export("gate_floor_slow.json", 100.0, 1.0);  // 0.1x < 0.4x
  EXPECT_EQ(run({"--min-ratio", base, fast, "runtime.shard.routed",
                 "runtime.shard.bench.route_seconds:sum", "0.4"}),
            0);
  EXPECT_NE(out_.str().find("floor"), std::string::npos);
  EXPECT_EQ(run({"--min-ratio", base, slow, "runtime.shard.routed",
                 "runtime.shard.bench.route_seconds:sum", "0.4"}),
            1);
  EXPECT_NE(err_.str().find("fell below"), std::string::npos);
  // The same inputs pass the default (cost-ceiling) direction: the modes
  // really gate opposite tails.
  EXPECT_EQ(run({base, slow, "runtime.shard.routed",
                 "runtime.shard.bench.route_seconds:sum", "2.0"}),
            0);
  std::remove(base.c_str());
  std::remove(fast.c_str());
  std::remove(slow.c_str());
}

TEST_F(BenchGate, UsageAndMissingCounterContracts) {
  const std::string base = write_export("gate_u_base.json", 10.0, 1.0);
  EXPECT_EQ(run({}), 2);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
  EXPECT_EQ(run({"--min-ratio", base}), 2);
  EXPECT_EQ(run({base, base, "a", "b", "not-a-number"}), 2);
  EXPECT_EQ(run({base, base, "a", "b", "0"}), 2);
  EXPECT_EQ(run({"/nonexistent.json", base, "a", "b", "1.0"}), 2);
  // A counter missing from the CURRENT export is a regression (1), not a
  // usage error: the bench silently stopped recording it. Missing from
  // the BASELINE means the gate itself is misconfigured (2).
  const std::string cur = ::testing::TempDir() + "gate_u_cur.json";
  {
    std::ofstream o(cur);
    o << R"({"metrics":[{"name":"runtime.shard.routed","count":10}]})";
  }
  EXPECT_EQ(run({base, cur, "runtime.shard.routed",
                 "runtime.shard.bench.route_seconds:sum", "1.0"}),
            1);
  EXPECT_NE(err_.str().find("missing counter"), std::string::npos);
  EXPECT_EQ(run({cur, base, "runtime.shard.routed",
                 "runtime.shard.bench.route_seconds:sum", "1.0"}),
            2);
  std::remove(base.c_str());
  std::remove(cur.c_str());
}

}  // namespace
