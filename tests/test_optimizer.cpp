// Optimizer behaviour beyond the paper's published numbers: feasibility,
// KKT optimality across regimes, active-set behaviour at light load,
// monotonicity in lambda', and robustness near saturation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/kkt.hpp"
#include "core/objective.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using opt::LoadDistributionOptimizer;
using queue::Discipline;

model::Cluster small_cluster() {
  return model::Cluster({model::BladeServer(2, 2.0, 1.0), model::BladeServer(4, 1.0, 1.0),
                         model::BladeServer(1, 3.0, 0.5)},
                        1.0);
}

TEST(Objective, ValidatesInputs) {
  const auto c = small_cluster();
  EXPECT_THROW(opt::ResponseTimeObjective(c, Discipline::Fcfs, 0.0), std::invalid_argument);
  EXPECT_THROW(opt::ResponseTimeObjective(c, Discipline::Fcfs, c.max_generic_rate()),
               std::invalid_argument);
  const opt::ResponseTimeObjective obj(c, Discipline::Fcfs, 1.0);
  EXPECT_THROW((void)obj.value(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Objective, ValueIsWeightedMixture) {
  const auto c = small_cluster();
  const double lambda = 3.0;
  const opt::ResponseTimeObjective obj(c, Discipline::Fcfs, lambda);
  const std::vector<double> rates{1.0, 1.5, 0.5};
  double expected = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    expected += rates[i] / lambda * obj.queue(i).generic_response_time(rates[i]);
  }
  EXPECT_NEAR(obj.value(rates), expected, 1e-12);
}

TEST(Objective, GradientMatchesMarginals) {
  const auto c = small_cluster();
  const opt::ResponseTimeObjective obj(c, Discipline::SpecialPriority, 2.0);
  const std::vector<double> rates{0.5, 0.8, 0.7};
  const auto g = obj.gradient(rates);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(g[i], obj.marginal(i, rates[i]));
  }
}

TEST(Optimizer, RejectsInfeasibleLoad) {
  const LoadDistributionOptimizer solver(small_cluster(), Discipline::Fcfs);
  EXPECT_THROW((void)solver.optimize(0.0), std::invalid_argument);
  EXPECT_THROW((void)solver.optimize(-1.0), std::invalid_argument);
  EXPECT_THROW((void)solver.optimize(small_cluster().max_generic_rate()), std::invalid_argument);
}

TEST(Optimizer, ConservesTotalRate) {
  const LoadDistributionOptimizer solver(small_cluster(), Discipline::Fcfs);
  for (double frac : {0.05, 0.3, 0.6, 0.9, 0.97}) {
    const double lambda = frac * small_cluster().max_generic_rate();
    const auto sol = solver.optimize(lambda);
    EXPECT_NEAR(sol.total_rate(), lambda, 1e-9 * lambda) << "frac=" << frac;
    for (std::size_t i = 0; i < sol.rates.size(); ++i) {
      EXPECT_GE(sol.rates[i], 0.0);
      EXPECT_LT(sol.utilizations[i], 1.0);
    }
  }
}

TEST(Optimizer, SatisfiesKktAcrossRegimesAndDisciplines) {
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto c = small_cluster();
    const LoadDistributionOptimizer solver(c, d);
    for (double frac : {0.1, 0.5, 0.9}) {
      const double lambda = frac * c.max_generic_rate();
      const auto sol = solver.optimize(lambda);
      const auto rep = opt::verify_kkt(c, d, lambda, sol.rates, 1e-5);
      EXPECT_TRUE(rep.optimal()) << "frac=" << frac << " " << rep.detail;
    }
  }
}

TEST(Optimizer, LightLoadUsesOnlyBestServers) {
  // With a tiny lambda', only servers whose idle response time is lowest
  // should receive load. Server 2 (speed 3, xbar 1/3) dominates.
  const auto c = small_cluster();
  const LoadDistributionOptimizer solver(c, Discipline::Fcfs);
  const auto sol = solver.optimize(1e-4);
  EXPECT_GT(sol.rates[2], 0.9e-4);
  EXPECT_LT(sol.rates[1], 1e-6);  // slow server idles
}

TEST(Optimizer, InactiveServersSatisfyKktComplementarity) {
  const auto c = small_cluster();
  const double lambda = 0.01;
  const LoadDistributionOptimizer solver(c, Discipline::Fcfs);
  const auto sol = solver.optimize(lambda);
  const auto rep = opt::verify_kkt(c, Discipline::Fcfs, lambda, sol.rates, 1e-6);
  EXPECT_TRUE(rep.optimal()) << rep.detail;
  EXPECT_LT(rep.active.size(), c.size());
}

TEST(Optimizer, ResponseTimeMonotoneInTotalLoad) {
  const auto c = model::paper_example_cluster();
  const LoadDistributionOptimizer solver(c, Discipline::Fcfs);
  double prev = 0.0;
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    const double t = solver.optimize(frac * c.max_generic_rate()).response_time;
    EXPECT_GT(t, prev) << "frac=" << frac;
    prev = t;
  }
}

TEST(Optimizer, BeatsEveryPerturbation) {
  // Local optimality: shifting mass between any server pair cannot help.
  const auto c = small_cluster();
  const double lambda = 0.6 * c.max_generic_rate();
  const LoadDistributionOptimizer solver(c, Discipline::SpecialPriority);
  const auto sol = solver.optimize(lambda);
  const opt::ResponseTimeObjective obj(c, Discipline::SpecialPriority, lambda);
  const double best = obj.value(sol.rates);
  const double eps = 1e-4;
  for (std::size_t i = 0; i < sol.rates.size(); ++i) {
    for (std::size_t j = 0; j < sol.rates.size(); ++j) {
      if (i == j || sol.rates[i] < eps) continue;
      auto perturbed = sol.rates;
      perturbed[i] -= eps;
      perturbed[j] += eps;
      if (perturbed[j] >= 0.999 * obj.rate_bound(j)) continue;
      EXPECT_GE(obj.value(perturbed), best - 1e-12) << i << "->" << j;
    }
  }
}

TEST(Optimizer, HandlesNearSaturation) {
  const auto c = model::paper_example_cluster();
  const LoadDistributionOptimizer solver(c, Discipline::Fcfs);
  const double lambda = 0.999 * c.max_generic_rate();
  const auto sol = solver.optimize(lambda);
  EXPECT_NEAR(sol.total_rate(), lambda, 1e-6 * lambda);
  EXPECT_GT(sol.response_time, 5.0);  // heavily congested
  for (double rho : sol.utilizations) EXPECT_LT(rho, 1.0);
}

TEST(Optimizer, HomogeneousClusterBalancesExactly) {
  std::vector<model::BladeServer> servers(4, model::BladeServer(3, 1.0, 0.9));
  const model::Cluster c(std::move(servers), 1.0);
  const LoadDistributionOptimizer solver(c, Discipline::Fcfs);
  const double lambda = 0.5 * c.max_generic_rate();
  const auto sol = solver.optimize(lambda);
  for (double r : sol.rates) EXPECT_NEAR(r, lambda / 4.0, 1e-7);
}

TEST(Optimizer, SingleServerGetsEverything) {
  const model::Cluster c({model::BladeServer(4, 1.5, 2.0)}, 1.0);
  const LoadDistributionOptimizer solver(c, Discipline::Fcfs);
  const double lambda = 0.7 * c.max_generic_rate();
  const auto sol = solver.optimize(lambda);
  ASSERT_EQ(sol.rates.size(), 1u);
  EXPECT_NEAR(sol.rates[0], lambda, 1e-10);
}

TEST(Optimizer, FindRateRespectsPhiOrdering) {
  const auto c = small_cluster();
  const double lambda = 2.0;
  const opt::ResponseTimeObjective obj(c, Discipline::Fcfs, lambda);
  const LoadDistributionOptimizer solver(c, Discipline::Fcfs);
  // Larger phi admits more load on every server.
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double r1 = solver.find_rate(obj, i, 0.5);
    const double r2 = solver.find_rate(obj, i, 1.0);
    const double r3 = solver.find_rate(obj, i, 5.0);
    EXPECT_LE(r1, r2 + 1e-12);
    EXPECT_LE(r2, r3 + 1e-12);
  }
}

TEST(Optimizer, TighterToleranceRefinesSolution) {
  const auto c = model::paper_example_cluster();
  opt::OptimizerOptions loose;
  loose.rate_tolerance = 1e-6;
  loose.phi_tolerance = 1e-6;
  const auto sol_loose =
      LoadDistributionOptimizer(c, Discipline::Fcfs, loose).optimize(23.52);
  const auto sol_tight = LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(23.52);
  // Both near the published optimum; the tight one at least as good.
  EXPECT_NEAR(sol_loose.response_time, 0.8964703, 1e-4);
  EXPECT_LE(sol_tight.response_time, sol_loose.response_time + 1e-9);
}

TEST(OptimizerOptionsValidation, RejectsEachOutOfDomainField) {
  const auto c = small_cluster();
  const auto reject = [&](opt::OptimizerOptions o) {
    EXPECT_THROW(LoadDistributionOptimizer(c, Discipline::Fcfs, o), std::invalid_argument);
    EXPECT_THROW(o.validate(), std::invalid_argument);
  };

  opt::OptimizerOptions o;
  o.rate_tolerance = 0.0;
  reject(o);
  o = {};
  o.rate_tolerance = -1e-9;
  reject(o);
  o = {};
  o.phi_tolerance = 0.0;
  reject(o);
  o = {};
  o.phi_tolerance = std::nan("");
  reject(o);
  o = {};
  o.max_iterations = 0;
  reject(o);
  o = {};
  o.max_iterations = -3;
  reject(o);
  o = {};
  o.saturation_margin = 0.0;
  reject(o);
  o = {};
  o.saturation_margin = 1.0;
  reject(o);
  o = {};
  o.saturation_margin = -0.5;
  reject(o);
  o = {};
  o.service_scv = -1.0;
  reject(o);
}

TEST(OptimizerOptionsValidation, AcceptsDefaultsAndBoundaryValues) {
  EXPECT_NO_THROW(opt::OptimizerOptions{}.validate());
  opt::OptimizerOptions o;
  o.max_iterations = 1;          // minimal but legal
  o.saturation_margin = 0.9999;  // inside (0, 1)
  o.service_scv = 0.0;           // deterministic task sizes
  EXPECT_NO_THROW(o.validate());
  EXPECT_NO_THROW(LoadDistributionOptimizer(small_cluster(), Discipline::Fcfs, o));
}

TEST(Optimizer, ReportsDiagnostics) {
  const auto sol = LoadDistributionOptimizer(small_cluster(), Discipline::Fcfs).optimize(2.0);
  EXPECT_GT(sol.outer_iterations, 0);
  EXPECT_GT(sol.inner_evaluations, 0);
  EXPECT_GT(sol.phi, 0.0);
  ASSERT_EQ(sol.response_times.size(), 3u);
}

}  // namespace
