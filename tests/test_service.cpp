// General service distributions: moment checks per shape, the exact
// M/G/1 Pollaczek-Khinchine anchor, and the simulated M/G/m against the
// Allen-Cunneen approximation.
#include <gtest/gtest.h>

#include <cmath>

#include "model/cluster.hpp"
#include "queueing/mgm.hpp"
#include "sim/rng.hpp"
#include "sim/service.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace {

using namespace blade;
using sim::ServiceDistribution;
using sim::ServiceShape;

void check_moments(const ServiceDistribution& d, double mean, double scv, int n = 200000) {
  sim::RngStream rng(17, 99);
  util::RunningStats rs;
  for (int i = 0; i < n; ++i) rs.add(d.sample(rng));
  EXPECT_NEAR(rs.mean(), mean, 0.02 * mean);
  const double sample_scv = rs.variance() / (rs.mean() * rs.mean());
  EXPECT_NEAR(sample_scv, scv, 0.05 * std::max(0.2, scv));
}

TEST(ServiceDistribution, ExponentialMoments) {
  const auto d = ServiceDistribution::exponential(1.5);
  EXPECT_EQ(d.shape(), ServiceShape::Exponential);
  EXPECT_DOUBLE_EQ(d.scv(), 1.0);
  check_moments(d, 1.5, 1.0);
}

TEST(ServiceDistribution, DeterministicIsExact) {
  const auto d = ServiceDistribution::deterministic(0.7);
  sim::RngStream rng(1, 1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 0.7);
  EXPECT_DOUBLE_EQ(d.scv(), 0.0);
}

TEST(ServiceDistribution, ErlangMoments) {
  const auto d = ServiceDistribution::erlang(2.0, 4);
  EXPECT_DOUBLE_EQ(d.scv(), 0.25);
  check_moments(d, 2.0, 0.25);
}

TEST(ServiceDistribution, HyperExponentialMoments) {
  const auto d = ServiceDistribution::hyper_exponential(1.0, 4.0);
  EXPECT_DOUBLE_EQ(d.scv(), 4.0);
  check_moments(d, 1.0, 4.0);
}

TEST(ServiceDistribution, FromScvPicksShapes) {
  EXPECT_EQ(ServiceDistribution::from_scv(1.0, 0.0).shape(), ServiceShape::Deterministic);
  EXPECT_EQ(ServiceDistribution::from_scv(1.0, 0.5).shape(), ServiceShape::ErlangK);
  EXPECT_EQ(ServiceDistribution::from_scv(1.0, 1.0).shape(), ServiceShape::Exponential);
  EXPECT_EQ(ServiceDistribution::from_scv(1.0, 3.0).shape(), ServiceShape::HyperExp2);
  EXPECT_DOUBLE_EQ(ServiceDistribution::from_scv(1.0, 0.5).scv(), 0.5);  // Erlang-2
}

TEST(ServiceDistribution, Validation) {
  EXPECT_THROW((void)ServiceDistribution::exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)ServiceDistribution::erlang(1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)ServiceDistribution::hyper_exponential(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ServiceDistribution::from_scv(1.0, -1.0), std::invalid_argument);
}

TEST(Mg1Exact, PollaczekKhinchineKnownValues) {
  // rho = 0.5, exponential: Wq = rho xbar / (1 - rho) = 1.
  EXPECT_NEAR(queue::mg1_waiting_time(1.0, 1.0, 0.5), 1.0, 1e-12);
  // Deterministic halves it.
  EXPECT_NEAR(queue::mg1_waiting_time(1.0, 0.0, 0.5), 0.5, 1e-12);
  EXPECT_THROW((void)queue::mg1_waiting_time(1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(Mg1Exact, AllenCunneenCoincidesAtOneServer) {
  for (double scv : {0.0, 0.5, 1.0, 3.0}) {
    const queue::MGmApprox ac(1, 1.0, scv);
    for (double lam : {0.2, 0.5, 0.8}) {
      EXPECT_NEAR(ac.mean_waiting_time(lam), queue::mg1_waiting_time(1.0, scv, lam), 1e-12);
    }
  }
}

TEST(SimulatedMG1, MatchesPollaczekKhinchine) {
  // The strongest service-shape check: M/G/1 has an exact formula.
  const model::Cluster c({model::BladeServer(1, 1.0, 0.0)}, 1.0);
  const double lambda = 0.6;
  for (double scv : {0.0, 0.5, 4.0}) {
    util::RunningStats means;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      sim::SimConfig cfg;
      cfg.horizon = 80000.0;
      cfg.warmup = 8000.0;
      cfg.seed = seed;
      cfg.service_scv = scv;
      const auto res = sim::simulate_split(c, {lambda}, sim::SchedulingMode::Fcfs, cfg);
      means.add(res.generic_mean_response);
    }
    // The realized scv may be rounded (Erlang stages); recover it.
    const double real_scv = sim::ServiceDistribution::from_scv(1.0, scv).scv();
    const double expected = 1.0 + queue::mg1_waiting_time(1.0, real_scv, lambda);
    EXPECT_NEAR(means.mean(), expected, 0.06 * expected) << "scv=" << scv;
  }
}

TEST(SimulatedMGm, AllenCunneenWithinTenPercent) {
  // For multi-server queues Allen-Cunneen is approximate; quantify it.
  const model::Cluster c({model::BladeServer(4, 1.0, 0.0)}, 1.0);
  const double lambda = 3.0;  // rho = 0.75
  for (double scv : {0.5, 2.0}) {
    sim::SimConfig cfg;
    cfg.horizon = 120000.0;
    cfg.warmup = 10000.0;
    cfg.service_scv = scv;
    const auto res = sim::simulate_split(c, {lambda}, sim::SchedulingMode::Fcfs, cfg);
    const double real_scv = sim::ServiceDistribution::from_scv(1.0, scv).scv();
    const queue::MGmApprox ac(4, 1.0, real_scv);
    EXPECT_NEAR(res.generic_mean_response, ac.mean_response_time(lambda),
                0.10 * ac.mean_response_time(lambda))
        << "scv=" << scv;
  }
}

TEST(SimulatedScv, VariabilityOrdersResponseTimes) {
  const model::Cluster c({model::BladeServer(2, 1.0, 0.5)}, 1.0);
  sim::SimConfig cfg;
  cfg.horizon = 40000.0;
  cfg.warmup = 4000.0;
  double prev = 0.0;
  for (double scv : {0.0, 1.0, 4.0}) {
    cfg.service_scv = scv;
    const auto res = sim::simulate_split(c, {0.8}, sim::SchedulingMode::Fcfs, cfg);
    EXPECT_GT(res.generic_mean_response, prev) << "scv=" << scv;
    prev = res.generic_mean_response;
  }
}

}  // namespace
