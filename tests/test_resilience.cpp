// Resilience battery for the typed-error taxonomy, solver watchdogs,
// controller failure containment (last-known-good / proportional
// fallback / blackout state machine), checkpoint/restore, and the
// deterministic fault injector — including the seeded chaos sequences
// the acceptance bar requires (labels: chaos;sim, so the sanitizer tiers
// pick the whole file up).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <cstdio>

#include "core/batch.hpp"
#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "numerics/roots.hpp"
#include "obs/obs.hpp"
#include "obs/recorder.hpp"
#include "runtime/chaos.hpp"
#include "runtime/controller.hpp"
#include "runtime/estimator.hpp"
#include "runtime/replay.hpp"
#include "sim/rng.hpp"
#include "util/alias_table.hpp"
#include "util/fileio.hpp"
#include "util/status.hpp"

namespace {

using namespace blade;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

model::Cluster small_cluster() {
  return model::make_cluster({4, 2, 1}, {1.0, 1.5, 2.0}, 1.0, 0.2);
}

#if BLADE_OBS_ENABLED
std::uint64_t counter(const char* name) {
  const obs::Snapshot snap = obs::registry().snapshot();
  const obs::MetricValue* m = snap.find(name);
  return m != nullptr ? m->count : 0;
}
#endif

// --- error taxonomy -------------------------------------------------------

TEST(StatusTaxonomy, ExpectedAndStatusBasics) {
  Expected<int> ok = 7;
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 7);
  Expected<int> bad = make_error(ErrorCode::Infeasible, "too much load");
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error().code, ErrorCode::Infeasible);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(bad.error().to_string(), "infeasible: too much load");
  EXPECT_THROW((void)bad.value(), std::logic_error);

  Status s;
  EXPECT_TRUE(s.ok());
  Status e = make_error(ErrorCode::ParseError, "line 3");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, ErrorCode::ParseError);
  EXPECT_STREQ(to_string(ErrorCode::BudgetExceeded), "budget_exceeded");
}

// --- alias table edge hardening (satellite) -------------------------------

TEST(AliasTableEdges, TypedRejections) {
  const auto empty = util::AliasTable::try_make(std::vector<double>{});
  ASSERT_FALSE(empty);
  EXPECT_EQ(empty.error().code, ErrorCode::InvalidArgument);

  const auto zeros = util::AliasTable::try_make(std::vector<double>{0.0, 0.0, 0.0});
  ASSERT_FALSE(zeros);
  EXPECT_NE(zeros.error().context.find("all weights are zero"), std::string::npos);

  const auto nan = util::AliasTable::try_make(std::vector<double>{1.0, kNan});
  ASSERT_FALSE(nan);
  EXPECT_NE(nan.error().context.find("finite"), std::string::npos);

  const auto neg = util::AliasTable::try_make(std::vector<double>{1.0, -0.5});
  ASSERT_FALSE(neg);
  EXPECT_EQ(neg.error().code, ErrorCode::InvalidArgument);

  EXPECT_THROW(util::AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(AliasTableEdges, SingleServerAlwaysRoutesToIt) {
  const auto one = util::AliasTable::try_make(std::vector<double>{5.0});
  ASSERT_TRUE(one.has_value());
  const auto& t = one.value();
  ASSERT_EQ(t.fractions().size(), 1u);
  EXPECT_DOUBLE_EQ(t.fractions()[0], 1.0);
  for (double u : {0.0, 0.3, 0.999}) EXPECT_EQ(t.sample(u, 0.5), 0u);
}

// --- watchdog options (satellite) -----------------------------------------

TEST(WatchdogOptions, ValidateCoversNewFields) {
  opt::OptimizerOptions opts;
  opts.max_marginal_evaluations = -1;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.max_marginal_evaluations = 0;
  opts.max_solve_seconds = kNan;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.max_solve_seconds = -1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.max_solve_seconds = 0.25;
  opts.max_marginal_evaluations = 1000;
  opts.strict_convergence = true;
  EXPECT_NO_THROW(opts.validate());
}

// --- solver no-throw guarantee under injected non-convergence -------------

TEST(SolverContainment, TryOptimizeNeverThrowsOnBudgetExhaustion) {
  const auto cluster = small_cluster();
  opt::OptimizerOptions opts;
  opts.max_marginal_evaluations = 3;  // far below what any solve needs
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs, opts);
  const double lambda = 0.6 * cluster.max_generic_rate();

#if BLADE_OBS_ENABLED
  const std::uint64_t before = counter("solver.budget_exceeded");
#endif
  Expected<opt::LoadDistribution> r = make_error(ErrorCode::Internal, "unset");
  ASSERT_NO_THROW(r = solver.try_optimize(lambda));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::BudgetExceeded);
  EXPECT_NE(r.error().context.find("marginal-evaluation budget"), std::string::npos);
#if BLADE_OBS_ENABLED
  EXPECT_GT(counter("solver.budget_exceeded"), before);
#endif

  // The throwing facade maps the same diagnostic onto the legacy type.
  EXPECT_THROW((void)solver.optimize(lambda), num::RootFindingError);
}

TEST(SolverContainment, StrictConvergenceSurfacesAsTypedError) {
  const auto cluster = small_cluster();
  opt::OptimizerOptions opts;
  opts.strict_convergence = true;
  opts.max_iterations = 1;
  opts.phi_tolerance = 1e-18;   // unreachable in one iteration
  opts.rate_tolerance = 1e-18;
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs, opts);
  Expected<opt::LoadDistribution> r = make_error(ErrorCode::Internal, "unset");
  ASSERT_NO_THROW(r = solver.try_optimize(0.5 * cluster.max_generic_rate()));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::NonConvergence);
}

TEST(SolverContainment, InfeasibleAndInvalidStayTyped) {
  const auto cluster = small_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const auto infeasible = solver.try_optimize(2.0 * cluster.max_generic_rate());
  ASSERT_FALSE(infeasible);
  EXPECT_EQ(infeasible.error().code, ErrorCode::Infeasible);
  const auto invalid = solver.try_optimize(-1.0);
  ASSERT_FALSE(invalid);
  EXPECT_EQ(invalid.error().code, ErrorCode::InvalidArgument);
}

// --- batched per-item statuses (satellite) --------------------------------

TEST(BatchStatuses, PoisonedInstanceCannotHideTheOthers) {
  const auto cluster = small_cluster();
  const opt::LoadDistributionOptimizer solver(cluster, queue::Discipline::Fcfs);
  const double lam_max = cluster.max_generic_rate();
  const std::vector<double> lambdas = {0.3 * lam_max, 2.0 * lam_max, 0.6 * lam_max, -1.0};

  const auto out = opt::optimize_many_checked(solver, lambdas);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[0].has_value());
  ASSERT_FALSE(out[1].has_value());
  EXPECT_EQ(out[1].error().code, ErrorCode::Infeasible);
  EXPECT_TRUE(out[2].has_value());
  ASSERT_FALSE(out[3].has_value());
  EXPECT_EQ(out[3].error().code, ErrorCode::InvalidArgument);
  EXPECT_NEAR(out[2].value().total_rate(), 0.6 * lam_max, 1e-6);

  // The throwing wrapper reports the lowest failing index and the count.
  try {
    (void)opt::optimize_many(solver, lambdas);
    FAIL() << "optimize_many should have thrown";
  } catch (const num::RootFindingError&) {
    FAIL() << "infeasible item 1 should map to std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2 of 4"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("item 1"), std::string::npos);
  }
}

// --- numerics watchdogs ---------------------------------------------------

TEST(NumericsWatchdogs, NonFiniteObjectiveIsRejected) {
  num::RootOptions opts;
  EXPECT_THROW((void)num::brent([](double) { return kNan; }, 0.0, 1.0, opts),
               num::RootFindingError);
}

TEST(NumericsWatchdogs, TimeBudgetAborts) {
  num::RootOptions opts;
  opts.tolerance = 0.0;         // never converge by width
  opts.max_iterations = 1 << 30;
  opts.max_seconds = 1e-9;      // expires immediately
  EXPECT_THROW((void)num::bisect([](double x) { return x - 0.25; }, 0.0, 1.0, opts),
               num::RootFindingError);
}

// --- estimator hardening --------------------------------------------------

TEST(EstimatorHardening, TryObserveDropsAndRepairs) {
  runtime::EwmaRateEstimator e(1.0);
  EXPECT_TRUE(e.try_observe(1.0));
  EXPECT_FALSE(e.try_observe(kNan));  // dropped
  EXPECT_EQ(e.count(), 1u);
  EXPECT_FALSE(e.try_observe(0.5));  // repaired: still counts as an arrival
  EXPECT_EQ(e.count(), 2u);
  EXPECT_TRUE(std::isfinite(e.rate(2.0)));

  runtime::WindowRateEstimator w(4.0);
  EXPECT_TRUE(w.try_observe(1.0));
  EXPECT_FALSE(w.try_observe(-3.0));
  EXPECT_EQ(w.count(), 2u);
  EXPECT_TRUE(std::isfinite(w.rate(2.0)));
}

TEST(EstimatorHardening, StateRoundTripsAndRejectsGarbage) {
  runtime::EwmaRateEstimator e(2.0);
  for (double t = 0.5; t < 10.0; t += 0.5) e.observe(t);
  runtime::EwmaRateEstimator fresh(1.0);
  ASSERT_TRUE(fresh.restore(e.state()).ok());
  EXPECT_DOUBLE_EQ(fresh.rate(12.0), e.rate(12.0));
  EXPECT_EQ(fresh.count(), e.count());

  runtime::EwmaState bad = e.state();
  bad.weight = -1.0;
  const Status s = fresh.restore(bad);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::InvalidArgument);
  // The failed restore must not have corrupted the estimator.
  EXPECT_DOUBLE_EQ(fresh.rate(12.0), e.rate(12.0));

  runtime::WindowRateEstimator w(4.0);
  for (double t = 0.5; t < 10.0; t += 0.5) w.observe(t);
  runtime::WindowRateEstimator wfresh(1.0);
  ASSERT_TRUE(wfresh.restore(w.state()).ok());
  EXPECT_DOUBLE_EQ(wfresh.rate(10.5), w.rate(10.5));
  runtime::WindowState wbad = w.state();
  wbad.times.push_back(wbad.last + 1.0);  // timestamp beyond `last`
  EXPECT_FALSE(wfresh.restore(wbad).ok());
}

// --- controller containment state machine ---------------------------------

runtime::ControllerConfig contained_cfg(const model::Cluster& cluster) {
  runtime::ControllerConfig cfg;
  cfg.half_life = 1.0;
  cfg.check_interval = 4;
  cfg.min_arrivals = 8;
  cfg.initial_lambda = 0.5 * cluster.max_generic_rate();
  cfg.lkg_max_age = 5.0;
  return cfg;
}

TEST(Containment, InjectedFaultServesLastKnownGood) {
  const auto cluster = small_cluster();
  runtime::Controller ctrl(cluster, contained_cfg(cluster));
  ASSERT_EQ(ctrl.mode(), runtime::Mode::Optimal);
  const auto before = ctrl.routing_fractions();

  ctrl.arm_solver_fault();
  ctrl.resolve_now(1.0);
  EXPECT_EQ(ctrl.mode(), runtime::Mode::LastKnownGood);
  EXPECT_EQ(ctrl.stats().solver_failures, 1u);
  EXPECT_EQ(ctrl.stats().lkg_publications, 1u);
  EXPECT_EQ(ctrl.stats().fallback_publications, 0u);
  EXPECT_EQ(ctrl.stats().injected_faults, 1u);
  EXPECT_EQ(ctrl.last_solver_error().code, ErrorCode::NonConvergence);
  EXPECT_EQ(ctrl.last_solver_error().context, "injected solver fault");

  // The served split is exactly the last good one.
  const auto after = ctrl.routing_fractions();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) EXPECT_DOUBLE_EQ(after[i], before[i]);

  // A clean re-solve exits degraded mode.
  ctrl.resolve_now(2.0);
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Optimal);
  EXPECT_EQ(ctrl.last_solver_error().code, ErrorCode::Ok);
}

TEST(Containment, StaleLkgDegradesToProportionalFallback) {
  const auto cluster = small_cluster();
  runtime::Controller ctrl(cluster, contained_cfg(cluster));
  ASSERT_EQ(ctrl.mode(), runtime::Mode::Optimal);  // LKG solved at t = 0

  ctrl.arm_solver_fault();
  ctrl.resolve_now(100.0);  // far beyond lkg_max_age = 5
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Fallback);
  EXPECT_EQ(ctrl.stats().lkg_publications, 0u);
  EXPECT_EQ(ctrl.stats().fallback_publications, 1u);
  const auto f = ctrl.routing_fractions();
  ASSERT_EQ(f.size(), cluster.size());
  double sum = 0.0;
  for (double x : f) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Containment, BladeLossInvalidatesLkg) {
  const auto cluster = small_cluster();
  runtime::Controller ctrl(cluster, contained_cfg(cluster));
  ASSERT_EQ(ctrl.mode(), runtime::Mode::Optimal);
  ASSERT_TRUE(ctrl.lkg_servable(1.0));

  // The failure event itself triggers a (faulted) re-solve; the LKG
  // assumed more blades on server 0 than survive, so it is unservable.
  ctrl.arm_solver_fault();
  ctrl.on_failure(1.0, 0, 2);
  EXPECT_FALSE(ctrl.lkg_servable(1.0));
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Fallback);

  // Recovery restores the blades and (cleanly) re-solves back to optimal.
  ctrl.on_recovery(2.0, 0);
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Optimal);
}

TEST(Containment, DegradedModeRetriesEveryDriftCheck) {
  const auto cluster = small_cluster();
  auto cfg = contained_cfg(cluster);
  runtime::Controller ctrl(cluster, cfg);
  ctrl.arm_solver_fault();
  ctrl.resolve_now(0.5);
  ASSERT_NE(ctrl.mode(), runtime::Mode::Optimal);

  // No explicit resolve_now: the next drift check (every check_interval
  // arrivals, hysteresis bypassed while degraded) must recover on its own.
  sim::RngStream rng(7, 3);
  double t = 0.5;
  const double gap = 1.0 / cfg.initial_lambda;
  for (int k = 0; k < 64 && ctrl.mode() != runtime::Mode::Optimal; ++k) {
    ctrl.on_generic_arrival(t += gap, rng.uniform());
  }
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Optimal);
}

TEST(Containment, CorruptTimestampsAreRepairedNotFatal) {
  const auto cluster = small_cluster();
  runtime::Controller ctrl(cluster, contained_cfg(cluster));
  sim::RngStream rng(11, 5);
  double t = 0.0;
  for (int k = 0; k < 40; ++k) ctrl.on_generic_arrival(t += 0.1, rng.uniform());
  const std::uint64_t rejected_before = ctrl.stats().rejected_observations;
  ASSERT_NO_THROW(ctrl.on_generic_arrival(kNan, rng.uniform()));
  ASSERT_NO_THROW(ctrl.on_generic_arrival(-5.0, rng.uniform()));
  ASSERT_NO_THROW(ctrl.on_special_arrival(kNan, 0));
  EXPECT_EQ(ctrl.stats().rejected_observations, rejected_before + 3);
  ctrl.resolve_now(t + 0.1);
  EXPECT_EQ(ctrl.mode(), runtime::Mode::Optimal);
  EXPECT_TRUE(std::isfinite(ctrl.estimated_lambda(t + 0.2)));
}

// --- checkpoint / restore -------------------------------------------------

void feed_identically(runtime::Controller& a, runtime::Controller& b, std::uint64_t seed,
                      double t0, int count) {
  sim::RngStream ra(seed, 21), rb(seed, 21);
  double ta = t0, tb = t0;
  for (int k = 0; k < count; ++k) {
    const double u_a = ra.uniform(), u_b = rb.uniform();
    a.on_generic_arrival(ta += 0.05, u_a);
    b.on_generic_arrival(tb += 0.05, u_b);
    if (k % 7 == 0) {
      a.on_special_arrival(ta, k % 3);
      b.on_special_arrival(tb, k % 3);
    }
  }
}

TEST(Checkpoint, KillAndRestoreMatchesUninterruptedRun) {
  const auto cluster = small_cluster();
  const auto cfg = contained_cfg(cluster);

  runtime::Controller a(cluster, cfg);  // runs straight through
  sim::RngStream rng(3, 21);
  double t = 0.0;
  for (int k = 0; k < 120; ++k) a.on_generic_arrival(t += 0.05, rng.uniform());
  a.resolve_now(t);

  // "Kill" here: serialize, then bring up a cold controller and restore.
  const std::string ckpt = a.checkpoint_json();
  runtime::Controller b(cluster, cfg);
  const Status restored = b.restore_checkpoint(ckpt);
  ASSERT_TRUE(restored.ok()) << restored.to_string();
  EXPECT_EQ(b.stats().restores, 1u);
  EXPECT_EQ(b.mode(), a.mode());
  // The checkpoint serializes doubles at 12 significant digits, so the
  // restored state matches to ~1e-12 relative, not bit-for-bit.
  EXPECT_NEAR(b.shed_probability(), a.shed_probability(), 1e-9);
  EXPECT_NEAR(b.estimated_lambda(t + 1.0), a.estimated_lambda(t + 1.0), 1e-9);

  // Both keep ingesting the identical tail; the restored run must stay
  // within estimator tolerance of the uninterrupted one.
  feed_identically(a, b, 77, t, 240);
  a.resolve_now(t + 240 * 0.05);
  b.resolve_now(t + 240 * 0.05);
  EXPECT_NEAR(b.last_solved_lambda(), a.last_solved_lambda(), 1e-9);
  const auto fa = a.routing_fractions();
  const auto fb = b.routing_fractions();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_NEAR(fa[i], fb[i], 1e-9);
}

TEST(Checkpoint, WindowEstimatorRoundTrips) {
  const auto cluster = small_cluster();
  auto cfg = contained_cfg(cluster);
  cfg.estimator = runtime::EstimatorKind::Window;
  runtime::Controller a(cluster, cfg);
  sim::RngStream rng(5, 23);
  double t = 0.0;
  for (int k = 0; k < 60; ++k) a.on_generic_arrival(t += 0.05, rng.uniform());
  runtime::Controller b(cluster, cfg);
  ASSERT_TRUE(b.restore_checkpoint(a.checkpoint_json()).ok());
  EXPECT_NEAR(b.estimated_lambda(t + 0.5), a.estimated_lambda(t + 0.5), 1e-9);
}

TEST(Checkpoint, RestoreRejectsGarbageWithoutMutating) {
  const auto cluster = small_cluster();
  runtime::Controller ctrl(cluster, contained_cfg(cluster));
  const auto fractions_before = ctrl.routing_fractions();
  const std::string good = ctrl.checkpoint_json();

  // Not JSON at all.
  Status s = ctrl.restore_checkpoint("not json {");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::ParseError);

  // Topology mismatch: snapshot for a different server count.
  const auto other = model::make_cluster({2, 2}, {1.0, 1.0}, 1.0, 0.1);
  runtime::ControllerConfig ocfg;
  ocfg.half_life = 1.0;
  ocfg.initial_lambda = 0.3 * other.max_generic_rate();
  runtime::Controller octrl(other, ocfg);
  s = ctrl.restore_checkpoint(octrl.checkpoint_json());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::StaleState);

  // Estimator-kind mismatch.
  auto wcfg = contained_cfg(cluster);
  wcfg.estimator = runtime::EstimatorKind::Window;
  runtime::Controller wctrl(cluster, wcfg);
  s = ctrl.restore_checkpoint(wctrl.checkpoint_json());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::StaleState);

  // Valid JSON, wrong schema version.
  std::string corrupt = good;
  auto pos = corrupt.find("\"version\"");
  ASSERT_NE(pos, std::string::npos);
  pos = corrupt.find_first_of("0123456789", pos);
  ASSERT_NE(pos, std::string::npos);
  corrupt[pos] = '7';
  s = ctrl.restore_checkpoint(corrupt);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::ParseError);

  // Valid JSON, corrupt estimator snapshot (negative half-life).
  std::string bad_est = good;
  pos = bad_est.find("\"half_life\"");
  ASSERT_NE(pos, std::string::npos);
  pos = bad_est.find_first_of("0123456789", pos);
  ASSERT_NE(pos, std::string::npos);
  bad_est.insert(pos, "-");
  s = ctrl.restore_checkpoint(bad_est);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::InvalidArgument);

  // None of the failures touched the serving state.
  const auto fractions_after = ctrl.routing_fractions();
  ASSERT_EQ(fractions_after.size(), fractions_before.size());
  for (std::size_t i = 0; i < fractions_after.size(); ++i) {
    EXPECT_DOUBLE_EQ(fractions_after[i], fractions_before[i]);
  }
  EXPECT_EQ(ctrl.stats().restores, 0u);

  // And the original document still restores fine.
  EXPECT_TRUE(ctrl.restore_checkpoint(good).ok());
}

// Corruption battery over the on-disk shapes a crashed or bit-rotted
// checkpoint actually takes: every payload must be rejected with a typed
// error and must never be partially applied (the controller keeps
// serving its pre-restore table).
TEST(Checkpoint, CorruptionBatteryRejectsWithoutPartialApply) {
  const auto cluster = small_cluster();
  runtime::Controller ctrl(cluster, contained_cfg(cluster));
  const auto fractions_before = ctrl.routing_fractions();
  const std::string good = ctrl.checkpoint_json();

  // Torn write: a truncated prefix (the exact artifact write_file_atomic
  // exists to prevent) is not a parseable document.
  Status s = ctrl.restore_checkpoint(good.substr(0, good.size() / 2));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::ParseError);

  // Bit flip inside a key: "fractions" -> "Fractions" parses as JSON but
  // the required field is gone.
  std::string flipped = good;
  auto pos = flipped.find("\"fractions\"");
  ASSERT_NE(pos, std::string::npos);
  flipped[pos + 1] = static_cast<char>(flipped[pos + 1] ^ 0x20);
  s = ctrl.restore_checkpoint(flipped);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::ParseError);

  // NaN smuggled into the fractions array: JSON has no NaN literal, so
  // the document stops being JSON at all.
  std::string nan_doc = good;
  pos = nan_doc.find("\"fractions\"");
  pos = nan_doc.find_first_of("0123456789", pos);
  ASSERT_NE(pos, std::string::npos);
  auto end = nan_doc.find_first_of(",]", pos);
  ASSERT_NE(end, std::string::npos);
  nan_doc.replace(pos, end - pos, "NaN");
  s = ctrl.restore_checkpoint(nan_doc);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::ParseError);

  // Negative routing weight: valid JSON, but not a publishable table.
  std::string negative = good;
  pos = negative.find("\"fractions\"");
  pos = negative.find_first_of("0123456789", pos);
  ASSERT_NE(pos, std::string::npos);
  negative.insert(pos, "-");
  s = ctrl.restore_checkpoint(negative);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::ParseError);
  EXPECT_NE(s.error().context.find("not publishable"), std::string::npos);

  // Impossible topology claim: avail[0] above the server's blade count is
  // a stale snapshot, not a parse problem.
  std::string inflated = good;
  pos = inflated.find("\"avail\"");
  pos = inflated.find_first_of("0123456789", pos);
  ASSERT_NE(pos, std::string::npos);
  inflated.replace(pos, 1, "9");
  s = ctrl.restore_checkpoint(inflated);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::StaleState);

  // Nothing was partially applied by any rejection.
  const auto fractions_after = ctrl.routing_fractions();
  ASSERT_EQ(fractions_after.size(), fractions_before.size());
  for (std::size_t i = 0; i < fractions_after.size(); ++i) {
    EXPECT_DOUBLE_EQ(fractions_after[i], fractions_before[i]);
  }
  EXPECT_EQ(ctrl.stats().restores, 0u);
  EXPECT_TRUE(ctrl.restore_checkpoint(good).ok());
}

// --- crash-safe persistence (satellite) -----------------------------------

TEST(AtomicFile, WriteReadOverwriteRoundTrip) {
  const std::string path = "ATOMIC_roundtrip_test.json";
  ASSERT_TRUE(util::write_file_atomic(path, "first\n").ok());
  auto body = util::read_file(path);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body.value(), "first\n");

  // Overwrite replaces the whole content (rename over the old inode).
  ASSERT_TRUE(util::write_file_atomic(path, "second, longer body\n").ok());
  body = util::read_file(path);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body.value(), "second, longer body\n");

  // The temp file never outlives a successful write.
  EXPECT_FALSE(util::read_file(path + ".tmp").has_value());
  std::remove(path.c_str());
}

TEST(AtomicFile, FailureIsTypedAndLeavesNoDebris) {
  const std::string path = "no_such_dir_for_atomic_test/ckpt.json";
  const Status s = util::write_file_atomic(path, "body");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::Internal);
  EXPECT_FALSE(util::read_file(path).has_value());
  EXPECT_FALSE(util::read_file(path + ".tmp").has_value());

  auto missing = util::read_file("definitely_missing_file.json");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, ErrorCode::Internal);
}

// Replay-level persistence: periodic checkpoints land on schedule, the
// final document restores into a fresh replay, and a corrupted document
// refuses the whole run up front.
TEST(Checkpoint, ReplayPersistsPeriodicallyAndRestores) {
  const auto cluster = small_cluster();
  runtime::ControllerConfig cfg;
  cfg.half_life = 2.0;
  cfg.initial_lambda = 0.4 * cluster.max_generic_rate();

  runtime::ReplayTrace trace;
  trace.horizon = 80.0;
  trace.seed = 7;
  trace.events.push_back({.time = 0.0,
                          .kind = runtime::ReplayEvent::Kind::Rate,
                          .rate = 0.4 * cluster.max_generic_rate()});

  const std::string path = "CKPT_replay_test.json";
  runtime::ReplayOptions opts;
  opts.checkpoint_out = path;
  opts.checkpoint_every = 20.0;
  const auto first = runtime::replay(cluster, cfg, trace, opts);
  // Periodic writes at 20/40/60(/80) plus the final horizon snapshot.
  EXPECT_GE(first.checkpoints_written, 4u);

  const auto doc = util::read_file(path);
  ASSERT_TRUE(doc.has_value());

  runtime::ReplayOptions restore;
  restore.checkpoint_in = doc.value();
  const auto resumed = runtime::replay(cluster, cfg, trace, restore);
  EXPECT_EQ(resumed.stats.restores, 1u);
  EXPECT_EQ(resumed.final_fractions.size(), cluster.size());

  restore.checkpoint_in = doc.value().substr(0, doc.value().size() / 3);
  EXPECT_THROW((void)runtime::replay(cluster, cfg, trace, restore), std::invalid_argument);
  std::remove(path.c_str());
}

// --- replay trace parser (satellite) --------------------------------------

TEST(ReplayParser, TypedErrorsNameTheLine) {
  auto r = runtime::try_parse_replay_trace("horizon 10\nrate 1 -5\n");
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, ErrorCode::ParseError);
  EXPECT_NE(r.error().context.find("line 2"), std::string::npos);

  r = runtime::try_parse_replay_trace("horizon 10\nrate 5 1\nrate 1 2\n");
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().context.find("line 3"), std::string::npos);
  EXPECT_NE(r.error().context.find("non-decreasing"), std::string::npos);

  r = runtime::try_parse_replay_trace("horizon 10\nfail 1 0\nfail 2 0\n");
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().context.find("already fully failed"), std::string::npos);

  // recover resets the failed state; partial failures never set it.
  EXPECT_TRUE(runtime::try_parse_replay_trace(
                  "horizon 10\nfail 1 0\nrecover 2 0\nfail 3 0\n")
                  .has_value());
  EXPECT_TRUE(
      runtime::try_parse_replay_trace("horizon 10\nfail 1 0 2\nfail 2 0 2\n").has_value());

  EXPECT_THROW((void)runtime::parse_replay_trace("horizon 10\nrate 1 -5\n"),
               std::invalid_argument);
}

TEST(ReplayParser, ReferenceTraceRoundTrips) {
  const auto cluster = small_cluster();
  const auto trace = runtime::reference_failure_trace(cluster, 120.0);
  const auto reparsed = runtime::try_parse_replay_trace(runtime::to_text(trace));
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().events.size(), trace.events.size());
}

// --- fault injector -------------------------------------------------------

TEST(FaultInjector, ProfilesAndDeterminism) {
  ASSERT_FALSE(runtime::chaos_profile("bogus"));
  const auto heavy = runtime::chaos_profile("heavy");
  ASSERT_TRUE(heavy.has_value());

  runtime::FaultInjector a(42, heavy.value());
  runtime::FaultInjector b(42, heavy.value());
  for (int k = 0; k < 500; ++k) {
    const auto fa = a.corrupt_observation(0.1 * k);
    const auto fb = b.corrupt_observation(0.1 * k);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.phantoms, fb.phantoms);
    // NaN != NaN, so compare bit-for-bit through isnan.
    EXPECT_TRUE((std::isnan(fa.time) && std::isnan(fb.time)) || fa.time == fb.time);
    EXPECT_EQ(a.should_fault_solver(), b.should_fault_solver());
  }
  const auto flaps_a = a.flap_events(50.0, 3);
  const auto flaps_b = b.flap_events(50.0, 3);
  ASSERT_EQ(flaps_a.size(), flaps_b.size());
  for (std::size_t i = 0; i < flaps_a.size(); ++i) {
    EXPECT_EQ(flaps_a[i].time, flaps_b[i].time);
    EXPECT_EQ(flaps_a[i].server, flaps_b[i].server);
    EXPECT_EQ(flaps_a[i].kind, flaps_b[i].kind);
  }
  // Sorted, and strictly alternating fail/recover per server.
  std::vector<int> down(3, 0);
  double prev = 0.0;
  for (const auto& e : flaps_a) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
    if (e.kind == runtime::ReplayEvent::Kind::Fail) {
      EXPECT_EQ(down[e.server], 0) << "duplicate failure";
      down[e.server] = 1;
    } else {
      EXPECT_EQ(down[e.server], 1) << "recovery without failure";
      down[e.server] = 0;
    }
  }
}

// --- the chaos battery ----------------------------------------------------

struct ChaosHarness {
  model::Cluster cluster;
  runtime::Controller ctrl;
  std::vector<unsigned> avail;
  double t = 0.0;
  double lambda;

  ChaosHarness(model::Cluster c, runtime::ControllerConfig cfg, double lam)
      : cluster(c), ctrl(std::move(c), cfg), avail(cluster.size()), lambda(lam) {
    for (std::size_t i = 0; i < cluster.size(); ++i) avail[i] = cluster.server(i).size();
  }
};

/// Structural invariants that must hold after EVERY event, no matter what
/// the chaos injector did: published table valid or properly blacked out,
/// shed probability in range, degraded mode consistent with the table,
/// and containment accounting closed (every failure served from LKG or
/// proportional fallback).
void check_chaos_invariants(const ChaosHarness& h, std::uint64_t seed, int step) {
  const double shed = h.ctrl.shed_probability();
  ASSERT_TRUE(std::isfinite(shed)) << "seed " << seed << " step " << step;
  ASSERT_GE(shed, 0.0) << "seed " << seed << " step " << step;
  ASSERT_LE(shed, 1.0) << "seed " << seed << " step " << step;

  bool any_alive = false;
  for (std::size_t i = 0; i < h.avail.size(); ++i) {
    ASSERT_EQ(h.ctrl.available_blades(i), h.avail[i]) << "seed " << seed << " step " << step;
    if (h.avail[i] > 0) any_alive = true;
  }

  const auto f = h.ctrl.routing_fractions();
  const runtime::Mode mode = h.ctrl.mode();
  if (f.empty()) {
    ASSERT_EQ(mode, runtime::Mode::Blackout) << "seed " << seed << " step " << step;
    ASSERT_FALSE(any_alive) << "seed " << seed << " step " << step;
    ASSERT_EQ(shed, 1.0) << "seed " << seed << " step " << step;
  } else {
    ASSERT_NE(mode, runtime::Mode::Blackout) << "seed " << seed << " step " << step;
    ASSERT_EQ(f.size(), h.avail.size()) << "seed " << seed << " step " << step;
    double sum = 0.0;
    for (std::size_t i = 0; i < f.size(); ++i) {
      ASSERT_TRUE(std::isfinite(f[i])) << "seed " << seed << " step " << step << " i " << i;
      ASSERT_GE(f[i], 0.0) << "seed " << seed << " step " << step << " i " << i;
      sum += f[i];
    }
    ASSERT_NEAR(sum, 1.0, 1e-9) << "seed " << seed << " step " << step;
  }

  // Containment accounting: every contained failure was served somehow.
  const auto& st = h.ctrl.stats();
  ASSERT_EQ(st.solver_failures, st.lkg_publications + st.fallback_publications)
      << "seed " << seed << " step " << step;
  if (mode == runtime::Mode::LastKnownGood) {
    ASSERT_GT(st.lkg_publications, 0u) << "seed " << seed << " step " << step;
  }
}

/// Surrogate-cache activity of a chaos run with cfg.marginal_drift on.
struct McacheActivity {
  std::uint64_t decided = 0;        ///< drift checks settled by the cache path
  std::uint64_t invalidations = 0;  ///< epoch drops (resolves, topology churn)
};

void run_chaos_sequence(std::uint64_t seed, std::uint64_t* mode_transitions_out = nullptr,
                        bool marginal_drift = false,
                        std::vector<double>* final_fractions_out = nullptr,
                        McacheActivity* mcache_out = nullptr) {
  sim::RngStream rng(seed, 13);
  static const char* kProfiles[] = {"light", "moderate", "heavy"};
  runtime::FaultInjector chaos(seed,
                               runtime::chaos_profile(kProfiles[seed % 3]).value());

  const std::size_t n = 2 + rng.below(3);
  std::vector<unsigned> sizes(n);
  std::vector<double> speeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    sizes[i] = 1 + static_cast<unsigned>(rng.below(4));
    speeds[i] = 0.5 + 1.5 * rng.uniform();
  }
  const auto cluster = model::make_cluster(sizes, speeds, 1.0, 0.1 + 0.3 * rng.uniform());
  const double lam_max = cluster.max_generic_rate();

  runtime::ControllerConfig cfg;
  cfg.half_life = 32.0 / lam_max;
  cfg.check_interval = 4;
  cfg.min_arrivals = 8;
  cfg.initial_lambda = 0.5 * lam_max;
  cfg.marginal_drift = marginal_drift;
  ChaosHarness h(cluster, cfg, (0.3 + 0.5 * rng.uniform()) * 0.95 * lam_max);
  check_chaos_invariants(h, seed, -1);

  // Arrivals routed through the injector: drops, phantom spikes, and
  // timewarped stamps all hit the controller exactly as replay_chaotic
  // would deliver them.
  auto feed = [&](int count) {
    const double gap = 1.0 / h.lambda;
    for (int k = 0; k < count; ++k) {
      h.t += gap;
      const auto f = chaos.corrupt_observation(h.t);
      if (!f.drop) {
        h.ctrl.on_generic_arrival(f.time, rng.uniform());
        for (unsigned p = 0; p < f.phantoms; ++p) h.ctrl.on_generic_arrival(f.time, 2.0);
      }
      if (chaos.should_fault_solver()) h.ctrl.arm_solver_fault();
    }
  };

  const int events = 16;
  for (int step = 0; step < events; ++step) {
    const std::uint64_t kind = rng.below(5);
    if (kind == 0) {
      h.lambda = (0.2 + 0.9 * rng.uniform()) * lam_max;
    } else if (kind == 1) {
      const std::size_t i = rng.below(n);
      const unsigned blades = static_cast<unsigned>(rng.below(sizes[i] + 1));
      h.ctrl.on_failure(h.t += 1e-3, i, blades);
      const unsigned lost = blades == 0 ? h.avail[i] : std::min(h.avail[i], blades);
      h.avail[i] -= lost;
    } else if (kind == 2) {
      const std::size_t i = rng.below(n);
      const unsigned blades = static_cast<unsigned>(rng.below(sizes[i] + 1));
      h.ctrl.on_recovery(h.t += 1e-3, i, blades);
      const unsigned missing = sizes[i] - h.avail[i];
      h.avail[i] += blades == 0 ? missing : std::min(missing, blades);
    } else if (kind == 3) {
      h.ctrl.on_special_arrival(h.t += 1e-3, rng.below(n));
    } else {
      // A burst of forced solver failures right before a re-solve.
      h.ctrl.arm_solver_fault(1 + rng.below(3));
      h.ctrl.resolve_now(h.t += 1e-3);
    }
    feed(48);
    check_chaos_invariants(h, seed, step);
  }

  // Faults cease: full topology back, stationary feasible load, armed
  // faults drained, estimators settled. The controller must reconverge.
  for (std::size_t i = 0; i < n; ++i) {
    if (h.avail[i] < sizes[i]) {
      h.ctrl.on_recovery(h.t += 1e-3, i);
      h.avail[i] = sizes[i];
    }
  }
  while (h.ctrl.armed_faults() > 0) h.ctrl.resolve_now(h.t += 1e-3);
  h.lambda = 0.5 * lam_max;
  const double gap = 1.0 / h.lambda;
  const int settle = static_cast<int>(std::ceil(8.0 * cfg.half_life * h.lambda)) + 64;
  for (int k = 0; k < settle; ++k) h.ctrl.on_generic_arrival(h.t += gap, rng.uniform());
  h.ctrl.resolve_now(h.t);
  check_chaos_invariants(h, seed, events);

  ASSERT_EQ(h.ctrl.mode(), runtime::Mode::Optimal) << "seed " << seed;
  ASSERT_EQ(h.ctrl.shed_probability(), 0.0) << "seed " << seed;

  // Within 1% of the static optimum for the inputs the last solve used.
  std::vector<model::BladeServer> eff;
  for (std::size_t i = 0; i < n; ++i) {
    const double cap = sizes[i] * speeds[i] / cluster.rbar();
    const double special = std::min(h.ctrl.estimated_special_rate(i, h.t),
                                    cfg.utilization_ceiling * cap);
    eff.emplace_back(sizes[i], speeds[i], special);
  }
  const auto sol = opt::LoadDistributionOptimizer(model::Cluster(std::move(eff), cluster.rbar()),
                                                  queue::Discipline::Fcfs)
                       .optimize(h.ctrl.last_solved_lambda());
  const auto f = h.ctrl.routing_fractions();
  ASSERT_EQ(f.size(), cluster.size()) << "seed " << seed;
  for (std::size_t i = 0; i < f.size(); ++i) {
    ASSERT_NEAR(f[i], sol.rates[i] / h.ctrl.last_solved_lambda(), 1e-2) << "seed " << seed;
  }

  if (mode_transitions_out != nullptr) *mode_transitions_out += h.ctrl.stats().mode_transitions;
  if (final_fractions_out != nullptr) *final_fractions_out = f;
  if (mcache_out != nullptr) {
    mcache_out->decided += h.ctrl.stats().mcache_hits + h.ctrl.stats().mcache_fallthroughs +
                           h.ctrl.stats().mcache_out_of_domain;
    mcache_out->invalidations += h.ctrl.marginal_cache_stats().invalidations;
  }
}

TEST(ChaosBattery, SeededFaultSequences) {
  // >= 300 sequences per the acceptance bar; profiles rotate per seed.
  for (std::uint64_t seed = 1; seed <= 300; ++seed) run_chaos_sequence(seed);
}

// The certified marginal-cache drift criterion under the same 300-seed
// battery: every sequence must satisfy the same invariants (asserted
// inside run_chaos_sequence), the cache must actually be exercised —
// including invalidations from the topology churn — and the controller
// must reconverge to the same split the estimate-based criterion reaches
// once faults cease. The drift criterion only decides WHEN to re-solve;
// the estimators and the solver see identical inputs at the final
// forced resolve, so the destinations must agree to solver tolerance.
TEST(ChaosBattery, MarginalDriftCacheReconvergesIdentically) {
  McacheActivity activity;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    std::vector<double> plain;
    std::vector<double> cached;
    run_chaos_sequence(seed, nullptr, /*marginal_drift=*/false, &plain);
    run_chaos_sequence(seed, nullptr, /*marginal_drift=*/true, &cached, &activity);
    ASSERT_EQ(plain.size(), cached.size()) << "seed " << seed;
    for (std::size_t i = 0; i < plain.size(); ++i) {
      ASSERT_NEAR(plain[i], cached[i], 1e-6) << "seed " << seed << " server " << i;
    }
  }
  EXPECT_GT(activity.decided, 0u) << "the battery never exercised the surrogate path";
  EXPECT_GT(activity.invalidations, 0u) << "topology churn never invalidated the cache";
}

TEST(ChaosBattery, ReplayChaoticIsDeterministicAndContained) {
  const auto cluster = small_cluster();
  const auto trace = runtime::reference_failure_trace(cluster, 120.0);
  runtime::ControllerConfig cfg;
  cfg.half_life = 1.2;

  for (const char* profile : {"light", "heavy"}) {
    const auto p = runtime::chaos_profile(profile).value();
    runtime::FaultInjector c1(9, p);
    runtime::FaultInjector c2(9, p);
    const auto r1 = runtime::replay_chaotic(cluster, cfg, trace, c1);
    const auto r2 = runtime::replay_chaotic(cluster, cfg, trace, c2);

    EXPECT_EQ(r1.stats.publications, r2.stats.publications) << profile;
    EXPECT_EQ(r1.stats.solver_failures, r2.stats.solver_failures) << profile;
    EXPECT_EQ(r1.stats.rejected_observations, r2.stats.rejected_observations) << profile;
    EXPECT_EQ(r1.final_mode, r2.final_mode) << profile;
    ASSERT_EQ(r1.final_fractions.size(), r2.final_fractions.size()) << profile;
    for (std::size_t i = 0; i < r1.final_fractions.size(); ++i) {
      EXPECT_DOUBLE_EQ(r1.final_fractions[i], r2.final_fractions[i]) << profile;
    }

    // Containment accounting holds at the horizon too.
    EXPECT_EQ(r1.stats.solver_failures,
              r1.stats.lkg_publications + r1.stats.fallback_publications)
        << profile;
    if (!r1.final_fractions.empty()) {
      double sum = 0.0;
      for (double x : r1.final_fractions) {
        EXPECT_TRUE(std::isfinite(x)) << profile;
        EXPECT_GE(x, 0.0) << profile;
        sum += x;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << profile;
    }
  }
}

#if BLADE_OBS_ENABLED
TEST(ChaosBattery, ContainmentCountersAreObservable) {
  const auto cluster = small_cluster();
  runtime::Controller ctrl(cluster, contained_cfg(cluster));
  const std::uint64_t failures_before = counter("runtime.solver_failures");
  const std::uint64_t lkg_before = counter("runtime.fallback_lkg");
  ctrl.arm_solver_fault();
  ctrl.resolve_now(1.0);
  obs::registry().flush_this_thread();
  EXPECT_EQ(counter("runtime.solver_failures"), failures_before + 1);
  EXPECT_EQ(counter("runtime.fallback_lkg"), lkg_before + 1);
}

// Acceptance bar: every degraded-mode transition across the 300-seed
// corpus must auto-dump the flight recorder, and the dump's timeline has
// to explain the transition — a trigger event (resolve trigger, failed
// solve, blade failure, watchdog trip, or chaos injection) recorded
// BEFORE the mode-transition event it caused.
TEST(ChaosBattery, EveryDegradedTransitionAutoDumpsWithCausalPrefix) {
  auto& rec = obs::recorder();
  rec.set_capacity(512);
  rec.reset();

  struct SinkTally {
    std::uint64_t mode_dumps = 0;      ///< auto-dumps with a "mode:" reason
    std::uint64_t other_dumps = 0;     ///< watchdog or other auto-dump reasons
    std::uint64_t degraded_dumps = 0;  ///< mode:fallback / mode:blackout
    std::uint64_t missing_transition = 0;
    std::uint64_t empty_prefix = 0;
    std::uint64_t missing_trigger = 0;
  } tally;
  std::string first_bad_reason;
  rec.set_dump_sink([&](const obs::Dump& d) {
    if (d.reason.rfind("mode:", 0) != 0) {
      ++tally.other_dumps;
      return;
    }
    ++tally.mode_dumps;
    if (d.reason != "mode:fallback" && d.reason != "mode:blackout") return;
    ++tally.degraded_dumps;

    // The transition that fired this dump is the newest ModeTransition in
    // the merged timeline; everything before it is the causal prefix.
    const auto events = d.merged();
    std::size_t ti = events.size();
    for (std::size_t i = events.size(); i-- > 0;) {
      if (events[i].type == obs::EventType::ModeTransition) {
        ti = i;
        break;
      }
    }
    if (ti == events.size()) {
      ++tally.missing_transition;
      if (first_bad_reason.empty()) first_bad_reason = d.reason + " (no transition)";
      return;
    }
    if (ti == 0) {
      ++tally.empty_prefix;
      if (first_bad_reason.empty()) first_bad_reason = d.reason + " (empty prefix)";
      return;
    }
    bool trigger = false;
    for (std::size_t i = 0; i < ti && !trigger; ++i) {
      switch (events[i].type) {
        case obs::EventType::ResolveTrigger:
        case obs::EventType::SolveEnd:
        case obs::EventType::BladeFail:
        case obs::EventType::BladeRecover:
        case obs::EventType::WatchdogTrip:
        case obs::EventType::ChaosInject:
          trigger = true;
          break;
        default:
          break;
      }
    }
    if (!trigger) {
      ++tally.missing_trigger;
      if (first_bad_reason.empty()) first_bad_reason = d.reason + " (no trigger event)";
    }
  });

  const std::uint64_t dumps_before = rec.auto_dumps();
  std::uint64_t transitions = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) run_chaos_sequence(seed, &transitions);
  rec.set_dump_sink(nullptr);

  // One auto-dump per mode transition — no transition escapes the
  // recorder, and nothing dumps twice.
  EXPECT_EQ(rec.auto_dumps() - dumps_before, tally.mode_dumps + tally.other_dumps);
  EXPECT_EQ(tally.mode_dumps, transitions);
  EXPECT_GT(transitions, 0u);
  // The corpus genuinely exercises degradation, and every degraded dump
  // carries an explanatory causal prefix.
  EXPECT_GT(tally.degraded_dumps, 0u);
  EXPECT_EQ(tally.missing_transition, 0u) << first_bad_reason;
  EXPECT_EQ(tally.empty_prefix, 0u) << first_bad_reason;
  EXPECT_EQ(tally.missing_trigger, 0u) << first_bad_reason;

  // Persist the corpus tail for the CI artifact upload (chaos jobs attach
  // RECORDER_*.jsonl from the build tree).
  obs::write_dump_file(rec.dump("chaos_battery"), "RECORDER_chaos_battery.jsonl");
  rec.set_capacity(4096);
  rec.reset();
}
#endif

}  // namespace
