// BladeQueue: the paper's T'_i formulas for both disciplines, their
// derivatives, convexity of the weighted response time, and the priority
// factor of Theorem 2.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/convexity.hpp"
#include "numerics/differentiation.hpp"
#include "queueing/blade_queue.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mmm.hpp"

namespace {

using blade::queue::BladeQueue;
using blade::queue::Discipline;

TEST(BladeQueue, ConstructionValidation) {
  EXPECT_THROW(BladeQueue(0, 1.0, 0.0, Discipline::Fcfs), std::invalid_argument);
  EXPECT_THROW(BladeQueue(2, 0.0, 0.0, Discipline::Fcfs), std::invalid_argument);
  EXPECT_THROW(BladeQueue(2, 1.0, -1.0, Discipline::Fcfs), std::invalid_argument);
  // Special stream alone saturating the server is rejected.
  EXPECT_THROW(BladeQueue(2, 1.0, 2.5, Discipline::Fcfs), blade::queue::UnstableQueueError);
}

TEST(BladeQueue, DisciplineNames) {
  EXPECT_STREQ(blade::queue::to_string(Discipline::Fcfs), "fcfs");
  EXPECT_STREQ(blade::queue::to_string(Discipline::SpecialPriority), "priority");
}

TEST(BladeQueue, UtilizationSplitsAdditively) {
  const BladeQueue q(4, 0.5, 2.0, Discipline::Fcfs);
  EXPECT_DOUBLE_EQ(q.special_utilization(), 0.25);
  EXPECT_NEAR(q.utilization(2.0), 0.5, 1e-14);  // rho' = rho'' = 0.25
  EXPECT_DOUBLE_EQ(q.max_generic_rate(), 6.0);
  EXPECT_THROW((void)q.utilization(6.5), blade::queue::UnstableQueueError);
}

TEST(BladeQueue, FcfsEqualsMergedMMm) {
  // Without priority the generic response time is just the M/M/m response
  // at the merged rate.
  const BladeQueue q(5, 0.8, 1.5, Discipline::Fcfs);
  const blade::queue::MMmQueue merged(5, 0.8);
  for (double lam : {0.0, 0.5, 2.0, 4.0}) {
    EXPECT_NEAR(q.generic_response_time(lam), merged.mean_response_time(lam + 1.5), 1e-12);
    EXPECT_NEAR(q.special_response_time(lam), q.generic_response_time(lam), 1e-12);
  }
}

TEST(BladeQueue, PriorityFactorMatchesTheorem2) {
  // T'(priority) = xbar + W(fcfs) / (1 - rho'') exactly.
  const unsigned m = 6;
  const double xbar = 0.7;
  const double lambda2 = 3.0;
  const BladeQueue fcfs(m, xbar, lambda2, Discipline::Fcfs);
  const BladeQueue prio(m, xbar, lambda2, Discipline::SpecialPriority);
  const double rho2 = prio.special_utilization();
  for (double lam : {0.1, 1.0, 3.0, 5.0}) {
    const double w_fcfs = fcfs.generic_response_time(lam) - xbar;
    EXPECT_NEAR(prio.generic_response_time(lam), xbar + w_fcfs / (1.0 - rho2), 1e-12);
  }
}

TEST(BladeQueue, PriorityHelpsSpecialHurtsGeneric) {
  const BladeQueue fcfs(4, 1.0, 1.2, Discipline::Fcfs);
  const BladeQueue prio(4, 1.0, 1.2, Discipline::SpecialPriority);
  for (double lam : {0.5, 1.5, 2.5}) {
    EXPECT_GT(prio.generic_response_time(lam), fcfs.generic_response_time(lam));
    EXPECT_LT(prio.special_response_time(lam), fcfs.special_response_time(lam));
  }
}

TEST(BladeQueue, NoSpecialTasksMakesDisciplinesIdentical) {
  const BladeQueue fcfs(3, 0.5, 0.0, Discipline::Fcfs);
  const BladeQueue prio(3, 0.5, 0.0, Discipline::SpecialPriority);
  for (double lam : {0.5, 2.0, 4.0}) {
    EXPECT_NEAR(fcfs.generic_response_time(lam), prio.generic_response_time(lam), 1e-14);
  }
}

TEST(BladeQueue, SingleBladeMatchesMM1ClosedForms) {
  const double xbar = 0.8;
  const double lambda2 = 0.4;  // rho'' = 0.32
  const BladeQueue fcfs(1, xbar, lambda2, Discipline::Fcfs);
  const BladeQueue prio(1, xbar, lambda2, Discipline::SpecialPriority);
  for (double lam : {0.1, 0.4, 0.7}) {
    const double rho = (lam + lambda2) * xbar;
    EXPECT_NEAR(fcfs.generic_response_time(lam), blade::queue::mm1_response_time(xbar, rho),
                1e-12);
    EXPECT_NEAR(prio.generic_response_time(lam),
                blade::queue::mm1_priority_generic_response_time(xbar, rho, lambda2 * xbar),
                1e-12);
  }
}

TEST(BladeQueue, AnalyticDerivativeMatchesNumeric) {
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    for (unsigned m : {1u, 2u, 6u, 14u}) {
      const double xbar = 0.9;
      const double lambda2 = 0.3 * m / xbar;
      const BladeQueue q(m, xbar, lambda2, d);
      for (double frac : {0.1, 0.4, 0.7, 0.9}) {
        const double lam = frac * q.max_generic_rate();
        const auto f = [&](double x) { return q.generic_response_time(x); };
        const double numeric = blade::num::richardson_derivative(f, lam);
        EXPECT_NEAR(q.dT_dlambda(lam), numeric, 1e-5 * std::max(1.0, std::abs(numeric)))
            << "d=" << blade::queue::to_string(d) << " m=" << m << " frac=" << frac;
      }
    }
  }
}

TEST(BladeQueue, ResponseTimeIsConvexInGenericRate) {
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    for (unsigned m : {1u, 4u, 10u}) {
      const BladeQueue q(m, 1.0, 0.3 * m, d);
      const double hi = 0.98 * q.max_generic_rate();
      // The objective contribution lambda * T'(lambda) must be convex.
      const auto rep = blade::num::check_convex(
          [&](double lam) { return lam * q.generic_response_time(lam); }, 0.0, hi, 120, 1e-8);
      EXPECT_TRUE(rep.holds) << "m=" << m << " worst=" << rep.worst_violation;
    }
  }
}

TEST(BladeQueue, LagrangeMarginalIsIncreasing) {
  // The solver's correctness rests on this monotonicity.
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    for (unsigned m : {1u, 2u, 8u, 14u}) {
      const BladeQueue q(m, 1.1, 0.25 * m / 1.1, d);
      const double hi = 0.97 * q.max_generic_rate();
      const auto rep = blade::num::check_increasing(
          [&](double lam) { return q.lagrange_marginal(lam); }, 0.0, hi, 160, 1e-9);
      EXPECT_TRUE(rep.holds) << "m=" << m << " worst at " << rep.worst_x;
    }
  }
}

TEST(BladeQueue, MarginalAtZeroIsIdleResponseTime) {
  const BladeQueue q(4, 1.0, 1.0, Discipline::Fcfs);
  EXPECT_NEAR(q.lagrange_marginal(0.0), q.generic_response_time(0.0), 1e-14);
}

TEST(BladeQueue, RhoQueryValidation) {
  const BladeQueue q(2, 1.0, 0.5, Discipline::Fcfs);
  EXPECT_THROW((void)q.response_time_at_rho(1.0), std::invalid_argument);
  EXPECT_THROW((void)q.response_time_at_rho(-0.1), std::invalid_argument);
  EXPECT_THROW((void)q.utilization(-1.0), std::invalid_argument);
}

}  // namespace
