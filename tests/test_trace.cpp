// Time-varying workload runner: profile construction, quasi-stationary
// evaluation, and adaptive-vs-static dominance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cloud/trace.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using cloud::diurnal_profile;
using cloud::run_adaptive;
using cloud::run_static;
using queue::Discipline;

TEST(DiurnalProfile, ShapeAndBounds) {
  const auto p = diurnal_profile(5.0, 20.0, 24);
  ASSERT_EQ(p.epoch_rates.size(), 24u);
  const double lo = *std::min_element(p.epoch_rates.begin(), p.epoch_rates.end());
  const double hi = *std::max_element(p.epoch_rates.begin(), p.epoch_rates.end());
  EXPECT_NEAR(lo, 5.0, 1e-9);
  EXPECT_NEAR(hi, 20.0, 0.2);  // grid may not land exactly on the peak
  // Trough at the start, peak mid-day.
  EXPECT_LT(p.epoch_rates.front(), p.epoch_rates[12]);
}

TEST(DiurnalProfile, Validation) {
  EXPECT_THROW((void)diurnal_profile(0.0, 10.0, 8), std::invalid_argument);
  EXPECT_THROW((void)diurnal_profile(5.0, 4.0, 8), std::invalid_argument);
  EXPECT_THROW((void)diurnal_profile(1.0, 2.0, 1), std::invalid_argument);
}

TEST(Trace, AdaptiveMatchesPerEpochOptima) {
  const auto c = model::paper_example_cluster();
  const auto p = diurnal_profile(8.0, 30.0, 12);
  const auto res = run_adaptive(c, Discipline::Fcfs, p);
  ASSERT_EQ(res.epochs.size(), 12u);
  EXPECT_EQ(res.overloaded_epochs, 0u);
  // Heavier epochs have larger T'.
  const auto& e_lo = res.epochs.front();
  const auto& e_hi = res.epochs[6];
  EXPECT_GT(e_hi.lambda, e_lo.lambda);
  EXPECT_GT(e_hi.response_time, e_lo.response_time);
  // Weighted mean lies between the extremes.
  double tmin = 1e9, tmax = 0.0;
  for (const auto& e : res.epochs) {
    tmin = std::min(tmin, e.response_time);
    tmax = std::max(tmax, e.response_time);
  }
  EXPECT_GE(res.mean_response_time, tmin);
  EXPECT_LE(res.mean_response_time, tmax);
}

TEST(Trace, AdaptiveNeverLosesToStatic) {
  const auto c = model::paper_example_cluster();
  const auto p = diurnal_profile(8.0, 34.0, 16);
  const auto adaptive = run_adaptive(c, Discipline::Fcfs, p);
  for (double design : {12.0, 20.0, 30.0}) {
    const auto fixed = run_static(c, Discipline::Fcfs, p, design);
    EXPECT_LE(adaptive.mean_response_time, fixed.mean_response_time + 1e-9)
        << "design=" << design;
  }
}

TEST(Trace, StaticScaledSplitIsNearOptimalHere) {
  // Proportional scaling of a good split stays feasible and close on this
  // cluster (the routing probabilities barely move with load).
  const auto c = model::paper_example_cluster();
  const auto p = diurnal_profile(10.0, 30.0, 12);
  const auto fixed = run_static(c, Discipline::Fcfs, p, 20.0);
  const auto adaptive = run_adaptive(c, Discipline::Fcfs, p);
  EXPECT_EQ(fixed.overloaded_epochs, 0u);
  EXPECT_LT(fixed.mean_response_time / adaptive.mean_response_time, 1.05);
}

TEST(Trace, StaticSplitFromLightDesignOverloadsAtPeak) {
  // A split tuned at light load parks real mass on the small fast server;
  // scaled to peak it saturates that server while the adaptive policy
  // re-routes.
  const auto c = model::paper_example_cluster();
  cloud::LoadProfile p;
  p.epoch_rates = {4.0, 44.0};  // peak very close to lambda'_max = 47.04
  const auto fixed = run_static(c, Discipline::Fcfs, p, 4.0);
  EXPECT_GE(fixed.overloaded_epochs, 1u);
  const auto adaptive = run_adaptive(c, Discipline::Fcfs, p);
  EXPECT_EQ(adaptive.overloaded_epochs, 0u);
}

TEST(Trace, StaticOverloadedEpochsAreCountedAndExcludedFromMean) {
  const auto c = model::paper_example_cluster();
  cloud::LoadProfile p;
  p.epoch_rates = {4.0, 44.0};
  const auto fixed = run_static(c, Discipline::Fcfs, p, 4.0);

  // The saturating epoch is reported as infinite and counted...
  ASSERT_EQ(fixed.epochs.size(), 2u);
  EXPECT_TRUE(std::isfinite(fixed.epochs[0].response_time));
  EXPECT_TRUE(std::isinf(fixed.epochs[1].response_time));
  EXPECT_EQ(fixed.overloaded_epochs, 1u);

  // ...and excluded from the task-weighted mean: with one finite epoch
  // the mean must equal that epoch's T' exactly, not be dragged to inf.
  EXPECT_TRUE(std::isfinite(fixed.mean_response_time));
  EXPECT_DOUBLE_EQ(fixed.mean_response_time, fixed.epochs[0].response_time);
}

TEST(Trace, ControllerTracksAdaptiveOnFeasibleProfile) {
  // The controller only sees the arrival stream, yet on a feasible
  // profile with epochs much longer than its half-life it must land
  // within a couple percent of the oracle re-solver — and never shed.
  const auto c = model::paper_example_cluster();
  auto p = diurnal_profile(10.0, 30.0, 6);
  p.epoch_duration = 300.0;

  runtime::ControllerConfig cfg;
  cfg.half_life = 20.0;
  const auto ctl = cloud::run_controller(c, Discipline::Fcfs, p, cfg);
  const auto adaptive = run_adaptive(c, Discipline::Fcfs, p);

  EXPECT_EQ(ctl.overloaded_epochs, 0u);
  ASSERT_EQ(ctl.epochs.size(), adaptive.epochs.size());
  // Per-epoch: the estimated-rate split can only lose to the oracle, and
  // only slightly.
  for (std::size_t e = 0; e < ctl.epochs.size(); ++e) {
    EXPECT_GE(ctl.epochs[e].response_time, adaptive.epochs[e].response_time - 1e-9) << e;
    EXPECT_LE(ctl.epochs[e].response_time, 1.05 * adaptive.epochs[e].response_time) << e;
  }
  EXPECT_LE(ctl.mean_response_time, 1.02 * adaptive.mean_response_time);
}

TEST(Trace, ControllerAvoidsOverloadWhereStaticOverloads) {
  // Same profile that saturates the light-design static split: the
  // controller re-estimates and re-solves, so no epoch is overloaded
  // (44.0 is still below its admission ceiling 0.95 * 47.04).
  const auto c = model::paper_example_cluster();
  cloud::LoadProfile p;
  p.epoch_rates = {4.0, 44.0};
  p.epoch_duration = 400.0;

  const auto fixed = run_static(c, Discipline::Fcfs, p, 4.0);
  EXPECT_GE(fixed.overloaded_epochs, 1u);

  runtime::ControllerConfig cfg;
  cfg.half_life = 20.0;
  const auto ctl = cloud::run_controller(c, Discipline::Fcfs, p, cfg);
  EXPECT_EQ(ctl.overloaded_epochs, 0u);
  EXPECT_TRUE(std::isfinite(ctl.epochs[1].response_time));
}

TEST(Trace, ControllerShedsAboveItsCeiling) {
  // A feasible-but-extreme epoch (46.8 < lambda'_max = 47.04, yet above
  // the 0.95 utilization ceiling) engages admission control: the epoch is
  // flagged overloaded while its evaluated T' stays finite.
  const auto c = model::paper_example_cluster();
  cloud::LoadProfile p;
  p.epoch_rates = {20.0, 46.8};
  p.epoch_duration = 400.0;

  runtime::ControllerConfig cfg;
  cfg.half_life = 20.0;
  const auto ctl = cloud::run_controller(c, Discipline::Fcfs, p, cfg);
  EXPECT_EQ(ctl.overloaded_epochs, 1u);
  for (const auto& e : ctl.epochs) EXPECT_TRUE(std::isfinite(e.response_time));
}

TEST(Trace, Validation) {
  const auto c = model::paper_example_cluster();
  cloud::LoadProfile empty;
  EXPECT_THROW((void)run_adaptive(c, Discipline::Fcfs, empty), std::invalid_argument);
  cloud::LoadProfile bad;
  bad.epoch_rates = {1.0, 100.0};  // infeasible epoch
  EXPECT_THROW((void)run_adaptive(c, Discipline::Fcfs, bad), std::invalid_argument);
  cloud::LoadProfile ok;
  ok.epoch_rates = {5.0, 10.0};
  EXPECT_THROW((void)run_static(c, Discipline::Fcfs, ok, 1000.0), std::invalid_argument);
  ok.epoch_duration = 0.0;
  EXPECT_THROW((void)run_adaptive(c, Discipline::Fcfs, ok), std::invalid_argument);
}

TEST(Trace, PriorityDisciplineSupported) {
  const auto c = model::paper_example_cluster();
  const auto p = diurnal_profile(10.0, 25.0, 8);
  const auto fcfs = run_adaptive(c, Discipline::Fcfs, p);
  const auto prio = run_adaptive(c, Discipline::SpecialPriority, p);
  EXPECT_GT(prio.mean_response_time, fcfs.mean_response_time);
}

}  // namespace
