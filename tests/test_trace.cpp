// Time-varying workload runner: profile construction, quasi-stationary
// evaluation, and adaptive-vs-static dominance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cloud/trace.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using cloud::diurnal_profile;
using cloud::run_adaptive;
using cloud::run_static;
using queue::Discipline;

TEST(DiurnalProfile, ShapeAndBounds) {
  const auto p = diurnal_profile(5.0, 20.0, 24);
  ASSERT_EQ(p.epoch_rates.size(), 24u);
  const double lo = *std::min_element(p.epoch_rates.begin(), p.epoch_rates.end());
  const double hi = *std::max_element(p.epoch_rates.begin(), p.epoch_rates.end());
  EXPECT_NEAR(lo, 5.0, 1e-9);
  EXPECT_NEAR(hi, 20.0, 0.2);  // grid may not land exactly on the peak
  // Trough at the start, peak mid-day.
  EXPECT_LT(p.epoch_rates.front(), p.epoch_rates[12]);
}

TEST(DiurnalProfile, Validation) {
  EXPECT_THROW((void)diurnal_profile(0.0, 10.0, 8), std::invalid_argument);
  EXPECT_THROW((void)diurnal_profile(5.0, 4.0, 8), std::invalid_argument);
  EXPECT_THROW((void)diurnal_profile(1.0, 2.0, 1), std::invalid_argument);
}

TEST(Trace, AdaptiveMatchesPerEpochOptima) {
  const auto c = model::paper_example_cluster();
  const auto p = diurnal_profile(8.0, 30.0, 12);
  const auto res = run_adaptive(c, Discipline::Fcfs, p);
  ASSERT_EQ(res.epochs.size(), 12u);
  EXPECT_EQ(res.overloaded_epochs, 0u);
  // Heavier epochs have larger T'.
  const auto& e_lo = res.epochs.front();
  const auto& e_hi = res.epochs[6];
  EXPECT_GT(e_hi.lambda, e_lo.lambda);
  EXPECT_GT(e_hi.response_time, e_lo.response_time);
  // Weighted mean lies between the extremes.
  double tmin = 1e9, tmax = 0.0;
  for (const auto& e : res.epochs) {
    tmin = std::min(tmin, e.response_time);
    tmax = std::max(tmax, e.response_time);
  }
  EXPECT_GE(res.mean_response_time, tmin);
  EXPECT_LE(res.mean_response_time, tmax);
}

TEST(Trace, AdaptiveNeverLosesToStatic) {
  const auto c = model::paper_example_cluster();
  const auto p = diurnal_profile(8.0, 34.0, 16);
  const auto adaptive = run_adaptive(c, Discipline::Fcfs, p);
  for (double design : {12.0, 20.0, 30.0}) {
    const auto fixed = run_static(c, Discipline::Fcfs, p, design);
    EXPECT_LE(adaptive.mean_response_time, fixed.mean_response_time + 1e-9)
        << "design=" << design;
  }
}

TEST(Trace, StaticScaledSplitIsNearOptimalHere) {
  // Proportional scaling of a good split stays feasible and close on this
  // cluster (the routing probabilities barely move with load).
  const auto c = model::paper_example_cluster();
  const auto p = diurnal_profile(10.0, 30.0, 12);
  const auto fixed = run_static(c, Discipline::Fcfs, p, 20.0);
  const auto adaptive = run_adaptive(c, Discipline::Fcfs, p);
  EXPECT_EQ(fixed.overloaded_epochs, 0u);
  EXPECT_LT(fixed.mean_response_time / adaptive.mean_response_time, 1.05);
}

TEST(Trace, StaticSplitFromLightDesignOverloadsAtPeak) {
  // A split tuned at light load parks real mass on the small fast server;
  // scaled to peak it saturates that server while the adaptive policy
  // re-routes.
  const auto c = model::paper_example_cluster();
  cloud::LoadProfile p;
  p.epoch_rates = {4.0, 44.0};  // peak very close to lambda'_max = 47.04
  const auto fixed = run_static(c, Discipline::Fcfs, p, 4.0);
  EXPECT_GE(fixed.overloaded_epochs, 1u);
  const auto adaptive = run_adaptive(c, Discipline::Fcfs, p);
  EXPECT_EQ(adaptive.overloaded_epochs, 0u);
}

TEST(Trace, Validation) {
  const auto c = model::paper_example_cluster();
  cloud::LoadProfile empty;
  EXPECT_THROW((void)run_adaptive(c, Discipline::Fcfs, empty), std::invalid_argument);
  cloud::LoadProfile bad;
  bad.epoch_rates = {1.0, 100.0};  // infeasible epoch
  EXPECT_THROW((void)run_adaptive(c, Discipline::Fcfs, bad), std::invalid_argument);
  cloud::LoadProfile ok;
  ok.epoch_rates = {5.0, 10.0};
  EXPECT_THROW((void)run_static(c, Discipline::Fcfs, ok, 1000.0), std::invalid_argument);
  ok.epoch_duration = 0.0;
  EXPECT_THROW((void)run_adaptive(c, Discipline::Fcfs, ok), std::invalid_argument);
}

TEST(Trace, PriorityDisciplineSupported) {
  const auto c = model::paper_example_cluster();
  const auto p = diurnal_profile(10.0, 25.0, 8);
  const auto fcfs = run_adaptive(c, Discipline::Fcfs, p);
  const auto prio = run_adaptive(c, Discipline::SpecialPriority, p);
  EXPECT_GT(prio.mean_response_time, fcfs.mean_response_time);
}

}  // namespace
