// Parameterized stochastic cross-validation: for a grid of (blades,
// utilization, discipline) the simulated blade server must agree with the
// analytic generic response time. This is the property the paper asserts
// by derivation; here each grid point is checked against an independent
// realization of the process.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace {

using namespace blade;
using queue::Discipline;

// (blades, target utilization, discipline)
using SimCase = std::tuple<unsigned, double, Discipline>;

class SimAgreesWithTheory : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimAgreesWithTheory, GenericResponseWithinTolerance) {
  const auto [m, rho, d] = GetParam();
  const double speed = 1.0;
  const double rbar = 1.0;
  // Split the target utilization: 40% of it from special, 60% generic.
  const double cap = m * speed / rbar;
  const double lambda2 = 0.4 * rho * cap;
  const double lambda1 = 0.6 * rho * cap;
  const model::Cluster cluster({model::BladeServer(m, speed, lambda2)}, rbar);
  const auto q = cluster.server(0).queue(rbar, d);
  const double expected = q.generic_response_time(lambda1);

  // Average three seeds to tame autocorrelation at high rho.
  util::RunningStats means;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    sim::SimConfig cfg;
    cfg.horizon = 40000.0;
    cfg.warmup = 4000.0;
    cfg.seed = seed;
    const auto res = sim::simulate_split(cluster, {lambda1}, sim::to_mode(d), cfg);
    means.add(res.generic_mean_response);
  }
  const double tol = (rho >= 0.85 ? 0.10 : 0.05) * expected;
  EXPECT_NEAR(means.mean(), expected, tol);
}

TEST_P(SimAgreesWithTheory, UtilizationWithinTolerance) {
  const auto [m, rho, d] = GetParam();
  const double cap = static_cast<double>(m);
  const double lambda2 = 0.4 * rho * cap;
  const double lambda1 = 0.6 * rho * cap;
  const model::Cluster cluster({model::BladeServer(m, 1.0, lambda2)}, 1.0);
  sim::SimConfig cfg;
  cfg.horizon = 40000.0;
  cfg.warmup = 0.0;
  const auto res = sim::simulate_split(cluster, {lambda1}, sim::to_mode(d), cfg);
  EXPECT_NEAR(res.servers[0].utilization, rho, 0.03);
}

std::string sim_case_name(const ::testing::TestParamInfo<SimCase>& info) {
  const auto [m, rho, d] = info.param;
  return "m" + std::to_string(m) + "_rho" + std::to_string(int(rho * 100)) + "_" +
         (d == Discipline::Fcfs ? "fcfs" : "prio");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimAgreesWithTheory,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u), ::testing::Values(0.5, 0.7, 0.85),
                       ::testing::Values(Discipline::Fcfs, Discipline::SpecialPriority)),
    sim_case_name);

// ------------------------------------------------- class ordering sweep

class PriorityOrdering : public ::testing::TestWithParam<unsigned> {};

TEST_P(PriorityOrdering, SpecialFasterGenericSlowerUnderPriority) {
  const unsigned m = GetParam();
  const double lambda2 = 0.35 * m;
  const double lambda1 = 0.35 * m;
  const model::Cluster cluster({model::BladeServer(m, 1.0, lambda2)}, 1.0);
  sim::SimConfig cfg;
  cfg.horizon = 30000.0;
  cfg.warmup = 3000.0;
  const auto fcfs = sim::simulate_split(cluster, {lambda1}, sim::SchedulingMode::Fcfs, cfg);
  const auto prio =
      sim::simulate_split(cluster, {lambda1}, sim::SchedulingMode::NonPreemptivePriority, cfg);
  EXPECT_LT(prio.special_mean_response, fcfs.special_mean_response);
  EXPECT_GT(prio.generic_mean_response, fcfs.generic_mean_response * 0.98);
}

INSTANTIATE_TEST_SUITE_P(Blades, PriorityOrdering, ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) { return "m" + std::to_string(info.param); });

}  // namespace
