// The instrumentation subsystem: log-bucket histograms, the metrics
// registry (thread-local accumulation + explicit merge), the scoped-span
// tracer, the three exporters (round-tripped through the util JSON
// parser), and the BLADE_OBS compile-time toggle itself — the same suite
// passes with the toggle ON and OFF, asserting presence or absence of
// the macro-produced metrics accordingly.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "model/cluster.hpp"
#include "obs/build_info.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"

namespace {

using namespace blade;

class ObsTest : public ::testing::Test {
 protected:
  // Each test starts from zeroed values. Registrations (and series caps)
  // survive reset by design, so metric names stay unique per test where
  // the registration parameters matter.
  void SetUp() override { obs::registry().reset(); }
};

TEST(LogBucketLayout, IndexAndEdgesAgree) {
  for (const double v : {1e-11, 1e-3, 0.5, 1.0, 1.5, 2.0, 3.0, 1000.0, 1e12}) {
    const std::size_t b = util::log_bucket_index(v);
    ASSERT_LT(b, util::kLogBucketCount);
    if (b > 0 && b + 1 < util::kLogBucketCount) {
      EXPECT_LE(util::log_bucket_lower(b), v) << v;
      EXPECT_LT(v, util::log_bucket_upper(b)) << v;
    }
  }
  // Non-positive and tiny values land in the underflow bucket; huge ones
  // in the overflow bucket.
  EXPECT_EQ(util::log_bucket_index(0.0), 0u);
  EXPECT_EQ(util::log_bucket_index(-3.0), 0u);
  EXPECT_EQ(util::log_bucket_index(1e300), util::kLogBucketCount - 1);
}

TEST(LogHistogram, MergeMatchesCombinedAdd) {
  util::LogHistogram a;
  util::LogHistogram b;
  util::LogHistogram all;
  for (int i = 1; i <= 100; ++i) {
    const double v = 0.001 * static_cast<double>(i * i);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  for (std::size_t bk = 0; bk < util::kLogBucketCount; ++bk) {
    EXPECT_EQ(a.bucket_count(bk), all.bucket_count(bk)) << "bucket " << bk;
  }
  EXPECT_DOUBLE_EQ(a.quantile(0.5), all.quantile(0.5));
}

TEST(LogHistogram, QuantilesAreMonotoneAndBracketTheData) {
  util::LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  double prev = 0.0;
  for (const double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    const double q = h.quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
  // Power-of-two buckets resolve any quantile to within one octave.
  EXPECT_GE(h.quantile(0.5), 250.0);
  EXPECT_LE(h.quantile(0.5), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
}

TEST_F(ObsTest, CounterGaugeHistogramThroughSnapshot) {
  obs::Registry& r = obs::registry();
  const obs::MetricId c = r.intern("obs_test.counter", obs::Kind::Counter);
  const obs::MetricId g = r.intern("obs_test.gauge", obs::Kind::Gauge);
  const obs::MetricId h = r.intern("obs_test.hist", obs::Kind::Histogram);
  r.add(c);
  r.add(c, 41);
  r.set(g, 2.0);
  r.set(g, 7.5);  // last write wins
  for (int i = 0; i < 10; ++i) r.observe(h, 4.0);
  const obs::Snapshot snap = r.snapshot();
  ASSERT_NE(snap.find("obs_test.counter"), nullptr);
  EXPECT_EQ(snap.find("obs_test.counter")->count, 42u);
  EXPECT_DOUBLE_EQ(snap.find("obs_test.gauge")->value, 7.5);
  const obs::MetricValue* hv = snap.find("obs_test.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->hist.count(), 10u);
  EXPECT_DOUBLE_EQ(hv->hist.sum(), 40.0);
  EXPECT_GE(hv->hist.quantile(0.5), 4.0);
  EXPECT_LE(hv->hist.quantile(0.5), 8.0);
}

TEST_F(ObsTest, InternIsIdempotentAndKindChecked) {
  obs::Registry& r = obs::registry();
  const obs::MetricId id = r.intern("obs_test.kind", obs::Kind::Counter);
  EXPECT_EQ(r.intern("obs_test.kind", obs::Kind::Counter), id);
  EXPECT_THROW((void)r.intern("obs_test.kind", obs::Kind::Gauge), std::invalid_argument);
}

TEST_F(ObsTest, SeriesRespectsCapAndCountsDrops) {
  obs::Registry& r = obs::registry();
  const obs::MetricId s = r.series("obs_test.series_capped", 4);
  for (int i = 0; i < 6; ++i) r.append(s, static_cast<double>(i), 2.0 * i);
  const obs::Snapshot snap = r.snapshot();
  const obs::SeriesValue* sv = snap.find_series("obs_test.series_capped");
  ASSERT_NE(sv, nullptr);
  ASSERT_EQ(sv->points.size(), 4u);
  EXPECT_EQ(sv->dropped, 2u);
  EXPECT_DOUBLE_EQ(sv->points[3].first, 3.0);
  EXPECT_DOUBLE_EQ(sv->points[3].second, 6.0);
}

TEST_F(ObsTest, ThreadExitPublishesAccumulatedDeltas) {
  obs::Registry& r = obs::registry();
  const obs::MetricId c = r.intern("obs_test.threads_counter", obs::Kind::Counter);
  constexpr int kThreads = 4;
  constexpr int kHits = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kHits; ++i) r.add(c);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(r.snapshot().find("obs_test.threads_counter")->count,
            static_cast<std::uint64_t>(kThreads) * kHits);
}

TEST_F(ObsTest, ThreadPoolFlushesAfterEveryTask) {
  obs::Registry& r = obs::registry();
  const obs::MetricId h = r.intern("obs_test.pool_hist", obs::Kind::Histogram);
  par::ThreadPool pool(3);
  constexpr int kTasks = 64;
  std::vector<std::future<void>> futs;
  futs.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futs.push_back(pool.submit([&r, h, i] { r.observe(h, 1.0 + i); }));
  }
  for (auto& f : futs) f.get();
  pool.wait_idle();
  // Workers flush after each task, so a main-thread snapshot taken while
  // the pool is idle must already see every sample — no thread exit needed.
  EXPECT_EQ(r.snapshot().find("obs_test.pool_hist")->hist.count(),
            static_cast<std::uint64_t>(kTasks));
}

TEST_F(ObsTest, JsonExportRoundTrips) {
  obs::Registry& r = obs::registry();
  r.add(r.intern("obs_test.rt_counter", obs::Kind::Counter), 13);
  r.set(r.intern("obs_test.rt_gauge", obs::Kind::Gauge), 3.25);
  const obs::MetricId h = r.intern("obs_test.rt_timer", obs::Kind::Timer);
  r.observe(h, 0.5);
  r.observe(h, 2.0);
  const obs::MetricId s = r.series("obs_test.rt_series");
  r.append(s, 1.0, 10.0);
  r.append(s, 2.0, 5.0);

  const util::JsonValue doc = util::parse_json(obs::to_json(r.snapshot()));
  const util::JsonValue& build = doc.at("build");
  EXPECT_EQ(build.at("obs").boolean, obs::build_info().obs_enabled);
  EXPECT_FALSE(build.at("compiler").string.empty());
  EXPECT_GT(doc.at("uptime_seconds").number, 0.0);

  auto metric = [&](const std::string& name) -> const util::JsonValue* {
    for (const util::JsonValue& m : doc.at("metrics").array) {
      if (m.at("name").string == name) return &m;
    }
    return nullptr;
  };
  const util::JsonValue* counter = metric("obs_test.rt_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->at("kind").string, "counter");
  EXPECT_DOUBLE_EQ(counter->at("count").number, 13.0);
  EXPECT_DOUBLE_EQ(metric("obs_test.rt_gauge")->at("value").number, 3.25);
  const util::JsonValue* timer = metric("obs_test.rt_timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_DOUBLE_EQ(timer->at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(timer->at("sum").number, 2.5);
  EXPECT_GT(timer->at("p99").number, timer->at("p50").number - 1e-12);

  const util::JsonValue* series = nullptr;
  for (const util::JsonValue& sv : doc.at("series").array) {
    if (sv.at("name").string == "obs_test.rt_series") series = &sv;
  }
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->at("points").array.size(), 2u);
  EXPECT_DOUBLE_EQ(series->at("points").array[1].array[0].number, 2.0);
  EXPECT_DOUBLE_EQ(series->at("points").array[1].array[1].number, 5.0);
}

TEST_F(ObsTest, PrometheusExportExposesAllKinds) {
  obs::Registry& r = obs::registry();
  r.add(r.intern("obs_test.prom_counter", obs::Kind::Counter), 9);
  r.set(r.intern("obs_test.prom_gauge", obs::Kind::Gauge), 1.5);
  const obs::MetricId h = r.intern("obs_test.prom_hist", obs::Kind::Histogram);
  r.observe(h, 0.25);
  r.observe(h, 8.0);
  const std::string text = obs::to_prometheus(r.snapshot());
  EXPECT_NE(text.find("blade_obs_test_prom_counter_total 9"), std::string::npos);
  EXPECT_NE(text.find("blade_obs_test_prom_gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("blade_obs_test_prom_hist_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("blade_obs_test_prom_hist_sum 8.25"), std::string::npos);
  EXPECT_NE(text.find("blade_obs_test_prom_hist_count 2"), std::string::npos);
}

TEST_F(ObsTest, PrometheusRoundTripIsWellFormed) {
  // Exercise the lossy-sanitization corner deliberately: "a.b" and
  // "a/b" both map to blade_..._a_b, so the exporter must dedupe.
  obs::Registry& r = obs::registry();
  r.add(r.intern("obs_test.rt.a.b", obs::Kind::Counter), 3);
  r.add(r.intern("obs_test.rt.a/b", obs::Kind::Counter), 5);
  r.set(r.intern("obs_test.rt/slash-gauge", obs::Kind::Gauge), 2.5);
  const std::string text = obs::to_prometheus(r.snapshot());

  // Every family gets # HELP (carrying the original dotted name) and
  // # TYPE; every sample line uses only [a-zA-Z0-9_] names.
  EXPECT_NE(text.find("# HELP blade_obs_test_rt_slash_gauge obs_test.rt/slash-gauge (gauge)"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE blade_obs_test_rt_slash_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("blade_obs_test_rt_slash_gauge 2.5"), std::string::npos);

  std::set<std::string> families;
  std::istringstream in(text);
  std::string line;
  std::size_t help_lines = 0;
  std::size_t type_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      ++help_lines;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      ++type_lines;
      const std::string family = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(families.insert(family).second) << "duplicate family " << family;
      continue;
    }
    if (line[0] == '#') continue;  // attribution comment
    const std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_FALSE(name.empty());
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      EXPECT_TRUE(ok) << "invalid char '" << c << "' in metric name " << name;
    }
  }
  EXPECT_EQ(help_lines, type_lines);

  // The colliding counters survived as distinct families with both
  // readings present.
  EXPECT_NE(text.find("blade_obs_test_rt_a_b_total "), std::string::npos);
  EXPECT_NE(text.find("blade_obs_test_rt_a_b_2_total "), std::string::npos);
  const bool both = text.find("_a_b_total 3") != std::string::npos
                        ? text.find("_a_b_2_total 5") != std::string::npos
                        : text.find("_a_b_total 5") != std::string::npos &&
                              text.find("_a_b_2_total 3") != std::string::npos;
  EXPECT_TRUE(both);
}

TEST_F(ObsTest, CsvExportParsesBack) {
  obs::Registry& r = obs::registry();
  r.add(r.intern("obs_test.csv_counter", obs::Kind::Counter), 21);
  const std::string text = obs::to_csv(r.snapshot());
  ASSERT_EQ(text.rfind("name,kind,count,value,sum,mean,p50,p90,p99\n", 0), 0u);
  bool found = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.rfind("obs_test.csv_counter,", 0) == 0) {
      EXPECT_EQ(line, "obs_test.csv_counter,counter,21,,,,,,");
      found = true;
    }
    pos = eol + 1;
  }
  EXPECT_TRUE(found);
}

TEST(ObsExport, FormatParsing) {
  EXPECT_EQ(obs::parse_export_format("json"), obs::ExportFormat::Json);
  EXPECT_EQ(obs::parse_export_format("prom"), obs::ExportFormat::Prometheus);
  EXPECT_EQ(obs::parse_export_format("csv"), obs::ExportFormat::Csv);
  EXPECT_THROW((void)obs::parse_export_format("yaml"), std::invalid_argument);
}

TEST(ObsBuildInfo, ReflectsCompileTimeToggle) {
  EXPECT_EQ(obs::build_info().obs_enabled, BLADE_OBS_ENABLED != 0);
  const std::string text = obs::build_info_text();
  EXPECT_NE(text.find("bladecloud "), std::string::npos);
  EXPECT_NE(text.find(BLADE_OBS_ENABLED ? "BLADE_OBS:  ON" : "BLADE_OBS:  OFF"),
            std::string::npos);
}

TEST_F(ObsTest, MacrosRespectTheCompileTimeToggle) {
  BLADE_OBS_COUNT("obs_test.macro_count");
  BLADE_OBS_OBSERVE("obs_test.macro_sample", 1.25);
  const obs::Snapshot snap = obs::registry().snapshot();
#if BLADE_OBS_ENABLED
  ASSERT_NE(snap.find("obs_test.macro_count"), nullptr);
  EXPECT_EQ(snap.find("obs_test.macro_count")->count, 1u);
  ASSERT_NE(snap.find("obs_test.macro_sample"), nullptr);
  EXPECT_EQ(snap.find("obs_test.macro_sample")->hist.count(), 1u);
#else
  // With BLADE_OBS off the macros expand to ((void)0): nothing interned.
  EXPECT_EQ(snap.find("obs_test.macro_count"), nullptr);
  EXPECT_EQ(snap.find("obs_test.macro_sample"), nullptr);
#endif
}

TEST_F(ObsTest, SpanTimerNestsByPath) {
  EXPECT_EQ(obs::current_span_path(), "");
  {
    obs::ScopedSpan outer("solve");
    EXPECT_EQ(obs::current_span_path(), "solve");
    {
      obs::ScopedSpan inner("extract");
      EXPECT_EQ(obs::current_span_path(), "solve/extract");
    }
    EXPECT_EQ(obs::current_span_path(), "solve");
  }
  EXPECT_EQ(obs::current_span_path(), "");
  const obs::Snapshot snap = obs::registry().snapshot();
  ASSERT_NE(snap.find("span.solve"), nullptr);
  EXPECT_EQ(snap.find("span.solve")->hist.count(), 1u);
  ASSERT_NE(snap.find("span.solve/extract"), nullptr);
}

TEST_F(ObsTest, OptimizerEmitsConvergenceDiagnostics) {
  const model::Cluster c({model::BladeServer(4, 1.0, 1.0)}, 1.0);
  opt::OptimizerOptions oo;
  oo.verbosity = 1;
  std::vector<std::string> lines;
  oo.diagnostic_sink = [&](const std::string& s) { lines.push_back(s); };
  const opt::LoadDistributionOptimizer solver(c, queue::Discipline::Fcfs, oo);
  const auto sol = solver.optimize(2.0);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("optimize: converged"), std::string::npos);
  EXPECT_EQ(lines[0], sol.summary());

  const obs::Snapshot snap = obs::registry().snapshot();
#if BLADE_OBS_ENABLED
  ASSERT_NE(snap.find("optimizer.solves"), nullptr);
  EXPECT_GE(snap.find("optimizer.solves")->count, 1u);
  ASSERT_NE(snap.find("numerics.erlang_c_evals"), nullptr);
  EXPECT_GT(snap.find("numerics.erlang_c_evals")->count, 0u);
  const obs::SeriesValue* trace = snap.find_series("optimizer.phi_bracket");
  ASSERT_NE(trace, nullptr);
  ASSERT_GT(trace->points.size(), 1u);
  // Bisection halves the bracket: the trace must decay monotonically.
  for (std::size_t i = 1; i < trace->points.size(); ++i) {
    EXPECT_LE(trace->points[i].second, trace->points[i - 1].second);
  }
#else
  EXPECT_EQ(snap.find("optimizer.solves"), nullptr);
#endif
}

}  // namespace
