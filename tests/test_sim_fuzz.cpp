// Fuzz/stress tests of the simulation substrate: randomized event-queue
// workloads (time ordering under heavy cancellation), thread-pool load,
// and conservation invariants of full cluster runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "model/random_cluster.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace blade;

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, PopsAreTimeOrderedUnderRandomCancellation) {
  sim::RngStream rng(GetParam(), 0);
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  std::vector<double> times;
  for (int i = 0; i < 3000; ++i) {
    const double t = rng.uniform() * 1000.0;
    times.push_back(t);
    ids.push_back(q.push(t, [] {}));
  }
  // Cancel a random third.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (rng.uniform() < 0.33) {
      q.cancel(ids[i]);
      ++cancelled;
    }
  }
  ASSERT_EQ(q.size(), ids.size() - cancelled);
  double prev = -1.0;
  std::size_t popped = 0;
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    EXPECT_GE(t, prev);
    prev = t;
    ++popped;
  }
  EXPECT_EQ(popped, ids.size() - cancelled);
}

TEST_P(EventQueueFuzz, InterleavedPushPopKeepsOrdering) {
  sim::RngStream rng(GetParam(), 1);
  sim::EventQueue q;
  double clock = 0.0;  // popped events may only move time forward
  for (int round = 0; round < 200; ++round) {
    const int pushes = 1 + static_cast<int>(rng.below(8));
    for (int i = 0; i < pushes; ++i) {
      (void)q.push(clock + rng.uniform() * 10.0, [] {});
    }
    const int pops = static_cast<int>(rng.below(4));
    for (int i = 0; i < pops && !q.empty(); ++i) {
      auto [t, fn] = q.pop();
      EXPECT_GE(t, clock);
      clock = t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz, ::testing::Values(1u, 7u, 42u, 1234u),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

TEST(ThreadPoolStress, ThousandsOfTinyTasks) {
  par::ThreadPool pool(8);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(20000);
  for (long i = 0; i < 20000; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 20000L * 19999L / 2);
}

TEST(ThreadPoolStress, NestedSubmitsFromWorkers) {
  par::ThreadPool pool(4);
  std::atomic<int> leaf{0};
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 16; ++i) {
    outer.push_back(pool.submit([&pool, &leaf] {
      // Submitting from a worker must not deadlock (queue, not join).
      auto inner = pool.submit([&leaf] { leaf.fetch_add(1); });
      (void)inner;  // completion is awaited via wait_idle below
    }));
  }
  for (auto& f : outer) f.get();
  pool.wait_idle();
  EXPECT_EQ(leaf.load(), 16);
}

class ClusterSimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterSimFuzz, ConservationOnRandomClusters) {
  // For random clusters at moderate random loads: completions+in-system
  // ~= emitted arrivals, utilization in [0,1), samples positive.
  model::RandomClusterSpec spec;
  spec.seed = GetParam();
  spec.max_servers = 5;
  spec.max_blades = 8;
  const auto cluster = model::random_cluster(spec);
  const double lambda = model::random_feasible_rate(cluster, spec.seed, 0.2, 0.7);

  // Split proportional to free capacity (always feasible at these loads).
  std::vector<double> rates;
  double cap = 0.0;
  for (const auto& s : cluster.servers()) cap += s.max_generic_rate(cluster.rbar());
  for (const auto& s : cluster.servers()) {
    rates.push_back(lambda * s.max_generic_rate(cluster.rbar()) / cap);
  }

  sim::SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.warmup = 500.0;
  cfg.seed = spec.seed;
  const auto res = sim::simulate_split(cluster, rates, sim::SchedulingMode::Fcfs, cfg);
  EXPECT_GT(res.generic_samples, 0u);
  EXPECT_GT(res.events, res.generic_samples);
  for (const auto& obs : res.servers) {
    EXPECT_GE(obs.utilization, 0.0);
    EXPECT_LT(obs.utilization, 1.0);
    EXPECT_GE(obs.time_avg_tasks, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterSimFuzz, ::testing::Range<std::uint64_t>(100, 112),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
