// Consolidation planner: SLO satisfaction, monotonicity in load and SLO,
// special-load pinning, and energy accounting.
#include <gtest/gtest.h>

#include "cloud/consolidation.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using cloud::LoadProfile;
using cloud::plan_consolidation;
using queue::Discipline;

LoadProfile flat(double lambda) {
  LoadProfile p;
  p.epoch_rates = {lambda};
  return p;
}

TEST(Consolidation, MeetsSloInEveryEpoch) {
  const auto c = model::paper_example_cluster();
  const auto profile = cloud::diurnal_profile(6.0, 30.0, 8);
  const auto plan = plan_consolidation(c, Discipline::Fcfs, profile, 1.2);
  ASSERT_EQ(plan.epochs.size(), 8u);
  for (const auto& e : plan.epochs) {
    EXPECT_LE(e.response_time, 1.2) << "lambda=" << e.lambda;
    EXPECT_GT(e.total_active, 0u);
    EXPECT_LE(e.total_active, c.total_blades());
  }
  EXPECT_GT(plan.energy_savings(), 0.0);
  EXPECT_LT(plan.energy_savings(), 1.0);
}

TEST(Consolidation, LightLoadSavesMoreThanHeavyLoad) {
  const auto c = model::paper_example_cluster();
  const auto light = plan_consolidation(c, Discipline::Fcfs, flat(6.0), 1.2);
  const auto heavy = plan_consolidation(c, Discipline::Fcfs, flat(34.0), 1.2);
  EXPECT_LT(light.epochs[0].total_active, heavy.epochs[0].total_active);
  EXPECT_GT(light.energy_savings(), heavy.energy_savings());
}

TEST(Consolidation, TighterSloKeepsMoreBladesOn) {
  const auto c = model::paper_example_cluster();
  const auto loose = plan_consolidation(c, Discipline::Fcfs, flat(20.0), 1.5);
  const auto tight = plan_consolidation(c, Discipline::Fcfs, flat(20.0), 0.95);
  EXPECT_GE(tight.epochs[0].total_active, loose.epochs[0].total_active);
}

TEST(Consolidation, SpecialLoadPinsServers) {
  // Every paper-cluster server carries special load, so none may reach
  // zero active blades, and each must keep rho'' < 1.
  const auto c = model::paper_example_cluster();
  const auto plan = plan_consolidation(c, Discipline::Fcfs, flat(5.0), 2.0);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const unsigned a = plan.epochs[0].active_blades[i];
    EXPECT_GE(a, 1u) << "server " << i;
    const auto& s = c.server(i);
    EXPECT_LT(s.special_rate() * c.rbar() / (s.speed() * a), 1.0);
  }
}

TEST(Consolidation, ReducedClusterStillOptimal) {
  // The reported T' must equal a fresh solve on the reduced cluster.
  const auto c = model::paper_example_cluster();
  const auto plan = plan_consolidation(c, Discipline::Fcfs, flat(15.0), 1.1);
  const auto& e = plan.epochs[0];
  std::vector<model::BladeServer> reduced;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (e.active_blades[i] == 0) continue;
    reduced.emplace_back(e.active_blades[i], c.server(i).speed(), c.server(i).special_rate());
  }
  const model::Cluster rc(std::move(reduced), c.rbar());
  const double fresh =
      opt::LoadDistributionOptimizer(rc, Discipline::Fcfs).optimize(15.0).response_time;
  EXPECT_NEAR(e.response_time, fresh, 1e-9);
}

TEST(Consolidation, PriorityDisciplineSupported) {
  const auto c = model::paper_example_cluster();
  const auto fcfs = plan_consolidation(c, Discipline::Fcfs, flat(18.0), 1.2);
  const auto prio = plan_consolidation(c, Discipline::SpecialPriority, flat(18.0), 1.2);
  // Priority inflates generic T', so it can never allow *more* savings.
  EXPECT_LE(prio.energy_savings(), fcfs.energy_savings() + 1e-12);
}

TEST(Consolidation, Validation) {
  const auto c = model::paper_example_cluster();
  EXPECT_THROW((void)plan_consolidation(c, Discipline::Fcfs, flat(20.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)plan_consolidation(c, Discipline::Fcfs, LoadProfile{}, 1.0),
               std::invalid_argument);
  // SLO below the idle service time is unreachable even fully on.
  EXPECT_THROW((void)plan_consolidation(c, Discipline::Fcfs, flat(20.0), 0.5),
               std::invalid_argument);
}

}  // namespace
