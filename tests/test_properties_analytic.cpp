// Parameterized property sweeps over the analytic stack: Erlang kernels,
// blade-queue shapes, and optimizer optimality across a grid of
// disciplines, cluster families, load levels, and variability settings.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/kkt.hpp"
#include "core/optimizer.hpp"
#include "core/policies.hpp"
#include "model/paper_configs.hpp"
#include "numerics/convexity.hpp"
#include "numerics/differentiation.hpp"
#include "numerics/erlang.hpp"
#include "queueing/blade_queue.hpp"

namespace {

using namespace blade;
using queue::Discipline;

// ----------------------------------------------------------- Erlang sweep

class ErlangProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ErlangProperty, DerivativeMatchesNumericEverywhere) {
  const unsigned m = GetParam();
  for (double rho = 0.05; rho < 0.99; rho += 0.05) {
    const auto f = [m](double r) { return num::erlang_c(m, r); };
    const double numeric = num::richardson_derivative(f, rho);
    EXPECT_NEAR(num::erlang_c_drho(m, rho), numeric, 1e-6 * std::max(1.0, numeric))
        << "rho=" << rho;
  }
}

TEST_P(ErlangProperty, ErlangCIsIncreasingAndConvexInRho) {
  const unsigned m = GetParam();
  const auto f = [m](double r) { return num::erlang_c(m, r); };
  EXPECT_TRUE(num::check_increasing(f, 0.0, 0.995, 150, 1e-10).holds);
  // Erlang C is convex in rho for all m (known result).
  EXPECT_TRUE(num::check_convex(f, 0.0, 0.99, 150, 1e-9).holds);
}

TEST_P(ErlangProperty, BoundedAndConsistentWithB) {
  const unsigned m = GetParam();
  for (double rho : {0.1, 0.5, 0.9}) {
    const double c = num::erlang_c(m, rho);
    const double b = num::erlang_b(m, m * rho);
    EXPECT_GE(c, b);  // queueing prob >= blocking prob, always
    EXPECT_LE(c, 1.0);
    EXPECT_GE(b, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, ErlangProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 14u, 32u, 100u, 500u),
                         [](const auto& info) { return "m" + std::to_string(info.param); });

// ------------------------------------------------------ blade-queue sweep

struct QueueCase {
  unsigned m;
  double preload;
  Discipline d;
  double scv;
};

std::string queue_case_name(const ::testing::TestParamInfo<QueueCase>& info) {
  const auto& p = info.param;
  return "m" + std::to_string(p.m) + "_y" + std::to_string(int(p.preload * 100)) + "_" +
         (p.d == Discipline::Fcfs ? "fcfs" : "prio") + "_scv" + std::to_string(int(p.scv * 10));
}

class QueueProperty : public ::testing::TestWithParam<QueueCase> {
 protected:
  queue::BladeQueue make() const {
    const auto& p = GetParam();
    const double xbar = 0.9;
    return queue::BladeQueue(p.m, xbar, p.preload * p.m / xbar, p.d, p.scv);
  }
};

TEST_P(QueueProperty, ObjectiveContributionIsConvex) {
  const auto q = make();
  const double hi = 0.97 * q.max_generic_rate();
  const auto rep = num::check_convex(
      [&](double lam) { return lam * q.generic_response_time(lam); }, 0.0, hi, 100, 1e-8);
  EXPECT_TRUE(rep.holds) << "worst " << rep.worst_violation << " at " << rep.worst_x;
}

TEST_P(QueueProperty, MarginalIsStrictlyIncreasing) {
  const auto q = make();
  const double hi = 0.97 * q.max_generic_rate();
  const auto rep =
      num::check_increasing([&](double lam) { return q.lagrange_marginal(lam); }, 0.0, hi, 120,
                            1e-9);
  EXPECT_TRUE(rep.holds) << "worst at " << rep.worst_x;
}

TEST_P(QueueProperty, AnalyticDerivativeMatchesNumeric) {
  const auto q = make();
  for (double frac : {0.15, 0.5, 0.85}) {
    const double lam = frac * q.max_generic_rate();
    const double numeric = num::richardson_derivative(
        [&](double x) { return q.generic_response_time(x); }, lam);
    EXPECT_NEAR(q.dT_dlambda(lam), numeric, 1e-5 * std::max(1.0, std::abs(numeric)))
        << "frac=" << frac;
  }
}

TEST_P(QueueProperty, ResponseTimeAboveServiceTime) {
  const auto q = make();
  for (double frac : {0.0, 0.3, 0.6, 0.9}) {
    const double lam = frac * q.max_generic_rate();
    EXPECT_GE(q.generic_response_time(lam), q.mean_service_time() - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QueueProperty,
    ::testing::Values(QueueCase{1, 0.3, Discipline::Fcfs, 1.0},
                      QueueCase{2, 0.3, Discipline::SpecialPriority, 1.0},
                      QueueCase{6, 0.0, Discipline::Fcfs, 1.0},
                      QueueCase{6, 0.45, Discipline::SpecialPriority, 1.0},
                      QueueCase{14, 0.3, Discipline::Fcfs, 1.0},
                      QueueCase{14, 0.3, Discipline::SpecialPriority, 1.0},
                      QueueCase{4, 0.3, Discipline::Fcfs, 0.0},
                      QueueCase{4, 0.3, Discipline::SpecialPriority, 3.0},
                      QueueCase{32, 0.2, Discipline::Fcfs, 2.0},
                      QueueCase{1, 0.6, Discipline::SpecialPriority, 1.0},
                      QueueCase{8, 0.15, Discipline::Fcfs, 0.5},
                      QueueCase{20, 0.4, Discipline::SpecialPriority, 1.0},
                      QueueCase{64, 0.3, Discipline::Fcfs, 1.0}),
    queue_case_name);

// -------------------------------------------------------- optimizer sweep

using OptCase = std::tuple<int, Discipline, double>;  // cluster id, discipline, load

model::Cluster cluster_by_id(int id) {
  switch (id) {
    case 0: return model::paper_example_cluster();
    case 1: return model::size_heterogeneity_groups().front().cluster;
    default: return model::speed_heterogeneity_groups().front().cluster;
  }
}

class OptimizerProperty : public ::testing::TestWithParam<OptCase> {
 protected:
  model::Cluster cluster() const { return cluster_by_id(std::get<0>(GetParam())); }
  Discipline discipline() const { return std::get<1>(GetParam()); }
  double lambda() const {
    return std::get<2>(GetParam()) * cluster().max_generic_rate();
  }
};

TEST_P(OptimizerProperty, SolutionIsKktOptimal) {
  const auto c = cluster();
  const auto sol = opt::LoadDistributionOptimizer(c, discipline()).optimize(lambda());
  EXPECT_NEAR(sol.total_rate(), lambda(), 1e-8 * lambda());
  const auto rep = opt::verify_kkt(c, discipline(), lambda(), sol.rates, 1e-5);
  EXPECT_TRUE(rep.optimal()) << rep.detail;
}

TEST_P(OptimizerProperty, DominatesProportionalBaseline) {
  const auto c = cluster();
  const double best =
      opt::LoadDistributionOptimizer(c, discipline()).optimize(lambda()).response_time;
  const double prop =
      opt::policy_response_time(opt::Policy::ProportionalToCapacity, c, discipline(), lambda());
  EXPECT_LE(best, prop + 1e-9);
}

TEST_P(OptimizerProperty, AgreesWithFineGreedy) {
  // A discretized version of the optimality condition lands within 1%.
  const auto c = cluster();
  const double best =
      opt::LoadDistributionOptimizer(c, discipline()).optimize(lambda()).response_time;
  const double greedy =
      opt::policy_response_time(opt::Policy::GreedyIncremental, c, discipline(), lambda());
  EXPECT_LT(greedy / best - 1.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimizerProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(Discipline::Fcfs, Discipline::SpecialPriority),
                       ::testing::Values(0.2, 0.5, 0.8)),
    [](const ::testing::TestParamInfo<OptCase>& info) {
      return "c" + std::to_string(std::get<0>(info.param)) + "_" +
             (std::get<1>(info.param) == Discipline::Fcfs ? "fcfs" : "prio") + "_l" +
             std::to_string(int(std::get<2>(info.param) * 100));
    });

}  // namespace
