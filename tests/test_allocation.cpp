// Discrete blade-allocation designer: budget conservation, feasibility,
// dominance over naive designs, and agreement with the M/M/m pooling
// intuition.
#include <gtest/gtest.h>

#include <numeric>

#include "core/allocation.hpp"
#include "core/optimizer.hpp"
#include "model/cluster.hpp"

namespace {

using namespace blade;
using opt::allocate_blades;
using opt::AllocationProblem;

AllocationProblem base_problem() {
  AllocationProblem p;
  p.speeds = {1.6, 1.3, 1.0};
  p.blade_budget = 12;
  p.rbar = 1.0;
  p.preload_fraction = 0.3;
  p.lambda_total = 6.0;
  return p;
}

unsigned total(const std::vector<unsigned>& v) {
  return std::accumulate(v.begin(), v.end(), 0u);
}

TEST(Allocation, SpendsExactlyTheBudget) {
  const auto res = allocate_blades(base_problem());
  EXPECT_EQ(total(res.sizes), 12u);
  EXPECT_GT(res.response_time, 0.0);
  EXPECT_GT(res.evaluations, 0);
}

TEST(Allocation, ResultIsFeasible) {
  const auto p = base_problem();
  const auto res = allocate_blades(p);
  double cap = 0.0;
  for (std::size_t i = 0; i < p.speeds.size(); ++i) {
    cap += (1.0 - p.preload_fraction) * res.sizes[i] * p.speeds[i];
  }
  EXPECT_GT(cap, p.lambda_total);
}

TEST(Allocation, BeatsUniformAndSingleChassisDesigns) {
  const auto p = base_problem();
  const auto res = allocate_blades(p);

  auto evaluate = [&](const std::vector<unsigned>& sizes) {
    std::vector<model::BladeServer> servers;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (sizes[i] == 0) continue;
      servers.emplace_back(sizes[i], p.speeds[i],
                           p.preload_fraction * sizes[i] * p.speeds[i] / p.rbar);
    }
    const model::Cluster c(std::move(servers), p.rbar);
    return opt::LoadDistributionOptimizer(c, p.discipline).optimize(p.lambda_total).response_time;
  };

  EXPECT_LE(res.response_time, evaluate({4, 4, 4}) + 1e-9);
  EXPECT_LE(res.response_time, evaluate({12, 0, 0}) + 1e-9);
  EXPECT_LE(res.response_time, evaluate({0, 0, 12}) + 1e-9);
  EXPECT_LE(res.response_time, evaluate({10, 1, 1}) + 1e-9);
}

TEST(Allocation, PrefersFasterChassis) {
  // With a big speed gap the fast chassis should carry most blades.
  AllocationProblem p;
  p.speeds = {2.0, 0.5};
  p.blade_budget = 10;
  p.preload_fraction = 0.2;
  p.lambda_total = 5.0;
  const auto res = allocate_blades(p);
  EXPECT_GT(res.sizes[0], res.sizes[1]);
}

TEST(Allocation, HomogeneousChassisGetBalancedBlades) {
  AllocationProblem p;
  p.speeds = {1.0, 1.0};
  p.blade_budget = 8;
  p.preload_fraction = 0.0;
  p.lambda_total = 3.0;
  const auto res = allocate_blades(p);
  // Pooling favors concentration: all blades on one chassis is the M/M/m
  // optimum here. Accept either a fully concentrated or near-balanced
  // design as long as it is not worse than both.
  EXPECT_EQ(total(res.sizes), 8u);
  const unsigned big = std::max(res.sizes[0], res.sizes[1]);
  EXPECT_GE(big, 4u);
}

TEST(Allocation, SingleChassisDegenerate) {
  AllocationProblem p;
  p.speeds = {1.2};
  p.blade_budget = 5;
  p.preload_fraction = 0.1;
  p.lambda_total = 3.0;
  const auto res = allocate_blades(p);
  EXPECT_EQ(res.sizes, std::vector<unsigned>{5});
}

TEST(Allocation, PriorityDisciplineSupported) {
  auto p = base_problem();
  p.discipline = queue::Discipline::SpecialPriority;
  const auto fcfs = allocate_blades(base_problem());
  const auto prio = allocate_blades(p);
  EXPECT_EQ(total(prio.sizes), 12u);
  EXPECT_GE(prio.response_time, fcfs.response_time);  // priority hurts generics
}

TEST(Allocation, RejectsImpossibleProblems) {
  auto p = base_problem();
  p.lambda_total = 100.0;  // way over any achievable capacity
  EXPECT_THROW((void)allocate_blades(p), std::invalid_argument);

  auto q = base_problem();
  q.blade_budget = 0;
  EXPECT_THROW((void)allocate_blades(q), std::invalid_argument);

  auto r = base_problem();
  r.speeds.clear();
  EXPECT_THROW((void)allocate_blades(r), std::invalid_argument);

  auto s = base_problem();
  s.preload_fraction = 1.0;
  EXPECT_THROW((void)allocate_blades(s), std::invalid_argument);
}

TEST(Allocation, MoreBudgetNeverHurts) {
  auto p = base_problem();
  const auto small = allocate_blades(p);
  p.blade_budget = 16;
  const auto big = allocate_blades(p);
  EXPECT_LT(big.response_time, small.response_time);
}

}  // namespace
