// Fuzz-style property suites on randomly generated instances: for dozens
// of seeded clusters the optimizer's output must satisfy KKT, agree with
// the DP and gradient solvers, and (in the single-blade regime) with the
// closed forms -- four independent solution paths converging on every
// instance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/closed_form.hpp"
#include "core/discrete_dp.hpp"
#include "core/gradient_optimizer.hpp"
#include "core/kkt.hpp"
#include "core/optimizer.hpp"
#include "model/random_cluster.hpp"

namespace {

using namespace blade;
using queue::Discipline;

Discipline discipline_for(std::uint64_t seed) {
  return seed % 2 == 0 ? Discipline::Fcfs : Discipline::SpecialPriority;
}

class FuzzedInstance : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  model::Cluster cluster() const {
    model::RandomClusterSpec spec;
    spec.seed = GetParam();
    return model::random_cluster(spec);
  }
  double lambda(const model::Cluster& c) const {
    return model::random_feasible_rate(c, GetParam());
  }
};

TEST_P(FuzzedInstance, GeneratorProducesValidClusters) {
  const auto c = cluster();
  EXPECT_GE(c.size(), 2u);
  EXPECT_LE(c.size(), 10u);
  EXPECT_GT(c.max_generic_rate(), 0.0);
  for (const auto& s : c.servers()) {
    EXPECT_LT(s.special_utilization(c.rbar()), 0.61);
  }
  // Determinism.
  const auto again = cluster();
  ASSERT_EQ(again.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(again.server(i), c.server(i));
}

TEST_P(FuzzedInstance, OptimizerSatisfiesKkt) {
  const auto c = cluster();
  const double lam = lambda(c);
  const auto d = discipline_for(GetParam());
  const auto sol = opt::LoadDistributionOptimizer(c, d).optimize(lam);
  EXPECT_NEAR(sol.total_rate(), lam, 1e-8 * lam);
  const auto rep = opt::verify_kkt(c, d, lam, sol.rates, 1e-4);
  EXPECT_TRUE(rep.optimal()) << "seed=" << GetParam() << ": " << rep.detail;
}

TEST_P(FuzzedInstance, DpAgreesWithBisection) {
  const auto c = cluster();
  const double lam = lambda(c);
  const auto d = discipline_for(GetParam());
  const double bis = opt::LoadDistributionOptimizer(c, d).optimize(lam).response_time;
  const double dp = opt::dp_distribution(c, d, lam, 1500).response_time;
  // Either solver may edge out the other by its own tolerance; require
  // two-sided agreement rather than strict dominance.
  EXPECT_GE(dp, bis * (1.0 - 1e-6)) << "seed=" << GetParam();
  EXPECT_LT(dp / bis - 1.0, 2e-3) << "seed=" << GetParam();
}

TEST_P(FuzzedInstance, GradientAgreesWithBisection) {
  const auto c = cluster();
  const double lam = lambda(c);
  const auto d = discipline_for(GetParam());
  const double bis = opt::LoadDistributionOptimizer(c, d).optimize(lam).response_time;
  const auto gd = opt::gradient_optimize(c, d, lam);
  EXPECT_LT(gd.distribution.response_time / bis - 1.0, 1e-4) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedInstance, ::testing::Range<std::uint64_t>(1, 41),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

class FuzzedSingleBlade : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzedSingleBlade, ClosedFormMatchesBisection) {
  model::RandomClusterSpec spec;
  spec.seed = GetParam() + 1000;
  spec.single_blade_only = true;
  const auto c = model::random_cluster(spec);
  const double lam = model::random_feasible_rate(c, spec.seed);
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto cf = opt::closed_form_distribution(c, d, lam);
    const auto bis = opt::LoadDistributionOptimizer(c, d).optimize(lam);
    EXPECT_NEAR(cf.response_time, bis.response_time, 1e-6 * bis.response_time)
        << "seed=" << spec.seed << " d=" << queue::to_string(d);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(cf.rates[i], bis.rates[i], 1e-4 * std::max(1.0, bis.rates[i]))
          << "seed=" << spec.seed << " server " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedSingleBlade, ::testing::Range<std::uint64_t>(1, 21),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

TEST(RandomClusterSpecValidation, RejectsBadRanges) {
  model::RandomClusterSpec s;
  s.min_servers = 0;
  EXPECT_THROW((void)model::random_cluster(s), std::invalid_argument);
  s = {};
  s.max_blades = 0;
  EXPECT_THROW((void)model::random_cluster(s), std::invalid_argument);
  s = {};
  s.max_preload = 1.0;
  EXPECT_THROW((void)model::random_cluster(s), std::invalid_argument);
  const auto c = model::random_cluster({});
  EXPECT_THROW((void)model::random_feasible_rate(c, 1, 0.5, 0.2), std::invalid_argument);
}

}  // namespace
