// Sensitivity analysis: signs, envelope identity, and agreement with
// direct re-solves.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "core/sensitivity.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using opt::analyze_sensitivity;
using queue::Discipline;

model::Cluster small() {
  return model::Cluster(
      {model::BladeServer(2, 1.6, 0.96), model::BladeServer(4, 1.5, 1.8),
       model::BladeServer(6, 1.4, 2.52)},
      1.0);
}

TEST(Sensitivity, SignsMatchTheRuleOfThumb) {
  // Paper Section 5: increase m_i or s_i, or reduce rbar or lambda''_i.
  const auto c = small();
  const auto rep = analyze_sensitivity(c, Discipline::Fcfs, 0.65 * c.max_generic_rate());
  EXPECT_GT(rep.dT_dlambda, 0.0);
  EXPECT_GT(rep.dT_drbar, 0.0);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_LT(rep.dT_dspeed[i], 0.0) << "server " << i;
    EXPECT_GT(rep.dT_dspecial[i], 0.0) << "server " << i;
    EXPECT_LT(rep.blade_value[i], 0.0) << "server " << i;
  }
}

TEST(Sensitivity, EnvelopeIdentityForLambda) {
  // dT'*/dlambda' = phi - T'*/lambda'.
  const auto c = small();
  const double lambda = 0.6 * c.max_generic_rate();
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto sol = opt::LoadDistributionOptimizer(c, d).optimize(lambda);
    const auto rep = analyze_sensitivity(c, d, lambda);
    EXPECT_NEAR(rep.dT_dlambda, sol.phi - sol.response_time / lambda, 1e-4)
        << queue::to_string(d);
  }
}

TEST(Sensitivity, BladeValueMatchesDirectResolve) {
  const auto c = small();
  const double lambda = 0.5 * c.max_generic_rate();
  const auto rep = analyze_sensitivity(c, Discipline::Fcfs, lambda);
  const double base =
      opt::LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(lambda).response_time;
  // Manually grow server 0 by one blade and re-solve.
  const model::Cluster grown(
      {model::BladeServer(3, 1.6, 0.96), model::BladeServer(4, 1.5, 1.8),
       model::BladeServer(6, 1.4, 2.52)},
      1.0);
  const double with_blade =
      opt::LoadDistributionOptimizer(grown, Discipline::Fcfs).optimize(lambda).response_time;
  EXPECT_NEAR(rep.blade_value[0], with_blade - base, 1e-9);
}

TEST(Sensitivity, SpeedDerivativeMatchesCoarseDifference) {
  const auto c = small();
  const double lambda = 0.5 * c.max_generic_rate();
  const auto rep = analyze_sensitivity(c, Discipline::Fcfs, lambda);
  // Coarse forward difference on server 1's speed (+2%).
  const model::Cluster faster(
      {model::BladeServer(2, 1.6, 0.96), model::BladeServer(4, 1.53, 1.8),
       model::BladeServer(6, 1.4, 2.52)},
      1.0);
  const double base =
      opt::LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(lambda).response_time;
  const double up =
      opt::LoadDistributionOptimizer(faster, Discipline::Fcfs).optimize(lambda).response_time;
  const double coarse = (up - base) / 0.03;
  EXPECT_NEAR(rep.dT_dspeed[1], coarse, 0.05 * std::abs(coarse));
}

TEST(Sensitivity, HeavierLoadAmplifiesEverything) {
  // The paper's "especially when lambda' is large": sensitivities grow
  // with load.
  const auto c = small();
  const auto light = analyze_sensitivity(c, Discipline::Fcfs, 0.3 * c.max_generic_rate());
  const auto heavy = analyze_sensitivity(c, Discipline::Fcfs, 0.85 * c.max_generic_rate());
  EXPECT_GT(heavy.dT_dlambda, light.dT_dlambda);
  EXPECT_GT(heavy.dT_drbar, light.dT_drbar);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_GT(std::abs(heavy.dT_dspeed[i]), std::abs(light.dT_dspeed[i]));
    EXPECT_GT(std::abs(heavy.blade_value[i]), std::abs(light.blade_value[i]));
  }
}

TEST(Sensitivity, Validation) {
  const auto c = small();
  EXPECT_THROW((void)analyze_sensitivity(c, Discipline::Fcfs, 0.0), std::invalid_argument);
  EXPECT_THROW((void)analyze_sensitivity(c, Discipline::Fcfs, c.max_generic_rate()),
               std::invalid_argument);
  EXPECT_THROW((void)analyze_sensitivity(c, Discipline::Fcfs, 1.0, -1e-3),
               std::invalid_argument);
}

TEST(Sensitivity, ZeroPreloadServerUsesOneSidedDifference) {
  const model::Cluster c(
      {model::BladeServer(2, 1.5, 0.0), model::BladeServer(2, 1.0, 0.5)}, 1.0);
  const auto rep = analyze_sensitivity(c, Discipline::Fcfs, 0.5 * c.max_generic_rate());
  EXPECT_GT(rep.dT_dspecial[0], 0.0);  // still well-defined and positive
}

}  // namespace
