// Output analysis: batch means and MSER-5 warmup detection, on synthetic
// sequences with known structure and on real simulator traces.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/cluster.hpp"
#include "queueing/mmm.hpp"
#include "sim/batch_means.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace blade;
using sim::batch_means;
using sim::mser5_warmup;

TEST(BatchMeans, RecoversIidMean) {
  sim::RngStream rng(7, 0);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.exponential(2.0));
  const auto res = batch_means(xs, 20);
  EXPECT_EQ(res.batches, 20u);
  EXPECT_EQ(res.batch_size, 1000u);
  EXPECT_NEAR(res.ci.mean, 2.0, 0.1);
  EXPECT_TRUE(res.ci.contains(2.0));
  // IID data: batch means nearly uncorrelated.
  EXPECT_LT(std::abs(res.lag1_autocorrelation), 0.5);
}

TEST(BatchMeans, CiShrinksWithMoreData) {
  sim::RngStream rng(11, 0);
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) xs.push_back(rng.exponential(1.0));
  const auto small = batch_means(std::span(xs).subspan(0, 4000), 20);
  const auto large = batch_means(xs, 20);
  EXPECT_LT(large.ci.half_width, small.ci.half_width);
}

TEST(BatchMeans, FlagsCorrelatedBatches) {
  // A slow sinusoidal drift across batches forces visible lag-1
  // correlation of the batch means.
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    xs.push_back(1.0 + std::sin(2.0 * 3.14159265 * i / 10000.0));
  }
  const auto res = batch_means(xs, 20);
  EXPECT_GT(res.lag1_autocorrelation, 0.5);
}

TEST(BatchMeans, Validation) {
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  EXPECT_THROW((void)batch_means(tiny, 2), std::invalid_argument);
  EXPECT_THROW((void)batch_means(tiny, 1), std::invalid_argument);
}

TEST(Mser5, KeepsEverythingForStationaryData) {
  sim::RngStream rng(3, 0);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.exponential(1.0));
  // Stationary: truncation should be small (well below a quarter).
  EXPECT_LT(mser5_warmup(xs), xs.size() / 4);
}

TEST(Mser5, CutsAnObviousTransient) {
  sim::RngStream rng(5, 0);
  std::vector<double> xs;
  // 1000 heavily inflated transient observations, then stationary.
  for (int i = 0; i < 1000; ++i) xs.push_back(50.0 + rng.exponential(1.0));
  for (int i = 0; i < 9000; ++i) xs.push_back(rng.exponential(1.0));
  const std::size_t cut = mser5_warmup(xs);
  EXPECT_GE(cut, 900u);
  EXPECT_LE(cut, 1500u);
}

TEST(Mser5, ShortSequencesReturnZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_EQ(mser5_warmup(xs), 0u);
}

TEST(BatchMeansOnSimulation, AgreesWithTheoryWithoutWarmupConfig) {
  // Run the simulator with NO warmup truncation, let MSER-5 find the
  // transient, and batch-means the rest: the CI should cover the M/M/m
  // mean response time.
  const model::Cluster c({model::BladeServer(4, 1.0, 0.0)}, 1.0);
  sim::SimConfig cfg;
  cfg.horizon = 60000.0;
  cfg.warmup = 0.0;
  cfg.record_generic_trace = true;
  cfg.seed = 9;
  const auto res = sim::simulate_split(c, {3.0}, sim::SchedulingMode::Fcfs, cfg);
  ASSERT_GT(res.generic_trace.size(), 100000u);

  const std::size_t cut = sim::mser5_warmup(res.generic_trace);
  const auto tail = std::span(res.generic_trace).subspan(cut);
  const auto bm = batch_means(tail, 20);
  const double expected = queue::MMmQueue(4, 1.0).mean_response_time(3.0);
  // Batch-means CIs on correlated data are approximate; accept a 3x slack.
  EXPECT_NEAR(bm.ci.mean, expected, 3.0 * bm.ci.half_width + 0.02 * expected);
}

TEST(TraceRecording, OffByDefault) {
  const model::Cluster c({model::BladeServer(1, 1.0, 0.0)}, 1.0);
  sim::SimConfig cfg;
  cfg.horizon = 1000.0;
  cfg.warmup = 100.0;
  const auto res = sim::simulate_split(c, {0.5}, sim::SchedulingMode::Fcfs, cfg);
  EXPECT_TRUE(res.generic_trace.empty());
  EXPECT_GT(res.generic_samples, 0u);
}

TEST(TraceRecording, TraceMatchesAccumulatorMean) {
  const model::Cluster c({model::BladeServer(2, 1.0, 0.5)}, 1.0);
  sim::SimConfig cfg;
  cfg.horizon = 5000.0;
  cfg.warmup = 500.0;
  cfg.record_generic_trace = true;
  const auto res = sim::simulate_split(c, {1.0}, sim::SchedulingMode::Fcfs, cfg);
  ASSERT_EQ(res.generic_trace.size(), res.generic_samples);
  double acc = 0.0;
  for (double x : res.generic_trace) acc += x;
  EXPECT_NEAR(acc / res.generic_trace.size(), res.generic_mean_response, 1e-9);
}

TEST(Occupancy, LittlesLawHoldsInSimulation) {
  // Time-averaged number in system == arrival rate x mean response, per
  // server, measured entirely inside the simulator.
  const model::Cluster c({model::BladeServer(3, 1.0, 1.0)}, 1.0);
  sim::SimConfig cfg;
  cfg.horizon = 50000.0;
  cfg.warmup = 0.0;  // Little's law applies to the whole run
  const double lambda1 = 1.2;
  const auto res = sim::simulate_split(c, {lambda1}, sim::SchedulingMode::Fcfs, cfg);
  ASSERT_EQ(res.servers.size(), 1u);
  const double total_rate = lambda1 + 1.0;
  // Overall mean response across both classes, weighted by samples.
  const double mean_T =
      (res.generic_mean_response * res.generic_samples +
       res.special_mean_response * res.special_samples) /
      (res.generic_samples + res.special_samples);
  EXPECT_NEAR(res.servers[0].time_avg_tasks, total_rate * mean_T,
              0.05 * total_rate * mean_T);
}

}  // namespace
