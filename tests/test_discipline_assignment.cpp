// Per-server discipline assignment: heterogeneous-discipline optimizer
// plumbing, SLO feasibility logic, and dominance over the two uniform
// regimes the paper analyzes.
#include <gtest/gtest.h>

#include "core/discipline_assignment.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using opt::assign_disciplines;
using opt::special_mean_response;
using queue::Discipline;

TEST(HeterogeneousDisciplines, OptimizerAcceptsPerServerVector) {
  const auto c = model::paper_example_cluster();
  std::vector<Discipline> ds(c.size(), Discipline::Fcfs);
  ds[0] = Discipline::SpecialPriority;
  ds[3] = Discipline::SpecialPriority;
  const auto sol = opt::LoadDistributionOptimizer(c, ds).optimize(20.0);
  EXPECT_NEAR(sol.total_rate(), 20.0, 1e-8 * 20.0);
  // Uniform vectors must match the single-discipline constructor exactly.
  const auto uniform = opt::LoadDistributionOptimizer(
                           c, std::vector<Discipline>(c.size(), Discipline::Fcfs))
                           .optimize(20.0);
  const auto classic = opt::LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(20.0);
  EXPECT_DOUBLE_EQ(uniform.response_time, classic.response_time);
  EXPECT_THROW(opt::LoadDistributionOptimizer(c, std::vector<Discipline>{Discipline::Fcfs}),
               std::invalid_argument);
}

TEST(HeterogeneousDisciplines, MixedLiesBetweenUniformRegimes) {
  const auto c = model::paper_example_cluster();
  const double lambda = 25.0;
  const auto fcfs = opt::LoadDistributionOptimizer(c, Discipline::Fcfs).optimize(lambda);
  const auto prio =
      opt::LoadDistributionOptimizer(c, Discipline::SpecialPriority).optimize(lambda);
  std::vector<Discipline> half(c.size(), Discipline::Fcfs);
  for (std::size_t i = 0; i < c.size(); i += 2) half[i] = Discipline::SpecialPriority;
  const auto mixed = opt::LoadDistributionOptimizer(c, half).optimize(lambda);
  EXPECT_GT(mixed.response_time, fcfs.response_time);
  EXPECT_LT(mixed.response_time, prio.response_time);
}

TEST(SpecialMeanResponse, WeightsByRateAndRespectsDiscipline) {
  const auto c = model::paper_example_cluster();
  const std::vector<double> rates(c.size(), 1.0);
  const std::vector<Discipline> fcfs(c.size(), Discipline::Fcfs);
  const std::vector<Discipline> prio(c.size(), Discipline::SpecialPriority);
  const double t_f = special_mean_response(c, fcfs, rates);
  const double t_p = special_mean_response(c, prio, rates);
  EXPECT_GT(t_f, 0.0);
  EXPECT_LT(t_p, t_f);  // priority helps special tasks
}

TEST(AssignDisciplines, LooseSloYieldsAllFcfs) {
  const auto c = model::paper_example_cluster();
  const auto res = assign_disciplines(c, 23.52, /*special_slo=*/100.0);
  ASSERT_TRUE(res.any_feasible);
  // With no binding SLO, FCFS everywhere minimizes the generic T'.
  EXPECT_NEAR(res.best.generic_response, res.all_fcfs.generic_response, 1e-9);
  for (auto d : res.best.disciplines) EXPECT_EQ(d, Discipline::Fcfs);
  EXPECT_EQ(res.evaluated, 2 + 128);  // 2 baselines + 2^7 assignments
}

TEST(AssignDisciplines, TightSloForcesPriorityEverywhere) {
  const auto c = model::paper_example_cluster();
  // The tightest achievable SLO is the all-priority special response
  // (~0.8654 here); just above it, only the all-priority assignment fits.
  const double floor_slo =
      assign_disciplines(c, 23.52, 100.0).all_priority.special_response;
  const auto res = assign_disciplines(c, 23.52, floor_slo + 1e-4);
  ASSERT_TRUE(res.any_feasible);
  for (auto d : res.best.disciplines) EXPECT_EQ(d, Discipline::SpecialPriority);
}

TEST(AssignDisciplines, IntermediateSloUsesMixedAssignment) {
  const auto c = model::paper_example_cluster();
  const double lo = assign_disciplines(c, 23.52, 100.0).all_priority.special_response;
  const double hi = assign_disciplines(c, 23.52, 100.0).all_fcfs.special_response;
  const double mid_slo = 0.5 * (lo + hi);
  const auto res = assign_disciplines(c, 23.52, mid_slo);
  ASSERT_TRUE(res.any_feasible);
  EXPECT_TRUE(res.best.feasible);
  EXPECT_LE(res.best.special_response, mid_slo);
  // Mixed must beat all-priority on the generic objective...
  EXPECT_LT(res.best.generic_response, res.all_priority.generic_response);
  // ...and be no better than unconstrained FCFS.
  EXPECT_GE(res.best.generic_response, res.all_fcfs.generic_response - 1e-9);
  // At least one server of each kind.
  int prio_count = 0;
  for (auto d : res.best.disciplines) prio_count += (d == Discipline::SpecialPriority);
  EXPECT_GT(prio_count, 0);
  EXPECT_LT(prio_count, static_cast<int>(c.size()));
}

TEST(AssignDisciplines, InfeasibleSloReported) {
  const auto c = model::paper_example_cluster();
  const auto res = assign_disciplines(c, 23.52, 0.1);  // below service time
  EXPECT_FALSE(res.any_feasible);
  EXPECT_FALSE(res.all_priority.feasible);
}

TEST(AssignDisciplines, Validation) {
  const auto c = model::paper_example_cluster();
  EXPECT_THROW((void)assign_disciplines(c, 23.52, 0.0), std::invalid_argument);
  EXPECT_THROW((void)assign_disciplines(c, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)assign_disciplines(c, 100.0, 1.0), std::invalid_argument);
}

}  // namespace
