// JSON writer: structure, escaping, misuse detection, and the figure
// serialization built on it.
#include <gtest/gtest.h>

#include "cloud/series.hpp"
#include "util/json.hpp"

namespace {

using blade::util::json_escape;
using blade::util::JsonWriter;

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("fig04");
  w.key("n").value(static_cast<long long>(5));
  w.key("ok").value(true);
  w.key("pi").value(3.25);
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), R"({"name":"fig04","n":5,"ok":true,"pi":3.25})");
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("xs").begin_array();
  w.value(1.0).value(2.0);
  w.begin_object();
  w.key("inner").value("v");
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"xs":[1,2,{"inner":"v"}]})");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, RejectsMisuse) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.key("k"), std::logic_error);  // key outside object
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.value(1.0);
    EXPECT_THROW(w.value(2.0), std::logic_error);  // two roots
  }
}

TEST(JsonWriter, CompleteTracksOpenScopes) {
  JsonWriter w;
  EXPECT_FALSE(w.complete());
  w.begin_array();
  EXPECT_FALSE(w.complete());
  w.end_array();
  EXPECT_TRUE(w.complete());
}

TEST(FigureJson, SerializesSeries) {
  blade::cloud::FigureData fig;
  fig.id = "t";
  fig.title = "demo";
  fig.xlabel = "x";
  fig.ylabel = "y";
  fig.series.push_back({"a", {1.0, 2.0}, {3.0, 4.0}});
  const auto doc = blade::cloud::to_json(fig);
  EXPECT_EQ(doc,
            R"({"id":"t","title":"demo","xlabel":"x","ylabel":"y",)"
            R"("series":[{"label":"a","x":[1,2],"y":[3,4]}]})");
}

TEST(FigureJson, RejectsRaggedSeries) {
  blade::cloud::FigureData fig;
  fig.series.push_back({"a", {1.0}, {}});
  EXPECT_THROW((void)blade::cloud::to_json(fig), std::logic_error);
}

}  // namespace
