// Deterministic concurrency stress for ThreadPool / parallel_for /
// sweep, aimed at TSan (label: stress; registered only when
// BLADE_ENABLE_STRESS_TESTS is ON -- the tsan preset turns it on).
// Every scenario uses fixed task counts and verifies an exact invariant,
// so a failure is a real synchronization bug, never timing flake:
// concurrent producers, wait_idle racing submission, exceptions crossing
// futures under load, tasks that submit tasks, concurrent parallel_for /
// sweep callers on one pool, and destructor-drain semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace blade::par;

constexpr int kProducers = 4;
constexpr int kTasksPerProducer = 800;

TEST(ThreadPoolStress, ConcurrentProducersAllTasksRunExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kTasksPerProducer);
      for (int t = 0; t < kTasksPerProducer; ++t) {
        futures[p].push_back(pool.submit([&counter, t] {
          counter.fetch_add(1, std::memory_order_relaxed);
          return t;
        }));
      }
    });
  }
  for (auto& pr : producers) pr.join();
  for (int p = 0; p < kProducers; ++p) {
    for (int t = 0; t < kTasksPerProducer; ++t) EXPECT_EQ(futures[p][t].get(), t);
  }
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStress, WaitIdleRacingSubmissionNeverMissesWork) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::atomic<bool> done{false};
  // A drainer hammering wait_idle while producers submit; wait_idle must
  // neither deadlock nor corrupt the in-flight accounting.
  std::thread drainer([&] {
    while (!done.load()) pool.wait_idle();
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int t = 0; t < kTasksPerProducer; ++t) {
        (void)pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& pr : producers) pr.join();
  pool.wait_idle();  // all submissions happened-before this call
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
  done.store(true);
  drainer.join();
}

TEST(ThreadPoolStress, ExceptionsCrossFuturesUnderLoad) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(2000);
  for (int t = 0; t < 2000; ++t) {
    futures.push_back(pool.submit([t]() -> int {
      if (t % 7 == 0) throw std::runtime_error("stress");
      return t;
    }));
  }
  int thrown = 0;
  for (int t = 0; t < 2000; ++t) {
    try {
      EXPECT_EQ(futures[t].get(), t);
    } catch (const std::runtime_error&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 2000 / 7 + 1);
  // The pool survives: it still runs work after a storm of exceptions.
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPoolStress, TasksSubmittingTasksDrainFully) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  // Each root task enqueues a chain of children from inside the pool
  // (without blocking a worker on a child future, which could deadlock a
  // finite pool). wait_idle must observe the whole cascade: while any
  // parent runs, in_flight > 0, so the idle predicate cannot fire early.
  constexpr int kRoots = 64;
  constexpr int kDepth = 50;
  std::function<void(int)> spawn = [&](int depth) {
    counter.fetch_add(1, std::memory_order_relaxed);
    if (depth > 0) (void)pool.submit([&spawn, depth] { spawn(depth - 1); });
  };
  for (int r = 0; r < kRoots; ++r) (void)pool.submit([&spawn] { spawn(kDepth); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kRoots * (kDepth + 1));
}

TEST(ThreadPoolStress, ConcurrentParallelForCallersOnOnePool) {
  ThreadPool pool(4);
  constexpr std::size_t kPerCaller = 20000;
  constexpr int kCallers = 3;
  std::vector<int> data(kCallers * kPerCaller, 0);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      const std::size_t base = c * kPerCaller;
      parallel_for(pool, base, base + kPerCaller, [&](std::size_t i) { data[i] = 1; });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0),
            static_cast<int>(data.size()));
}

TEST(ThreadPoolStress, ParallelForExceptionLeavesPoolUsable) {
  ThreadPool pool(4);
  std::atomic<int> touched{0};
  EXPECT_THROW(parallel_for(pool, 0, 5000,
                            [&](std::size_t i) {
                              touched.fetch_add(1, std::memory_order_relaxed);
                              if (i == 2500) throw std::invalid_argument("stress");
                            }),
               std::invalid_argument);
  // All chunks still completed or aborted cleanly; the pool is reusable.
  std::atomic<int> after{0};
  parallel_for(pool, 0, 1000, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 1000);
}

TEST(ThreadPoolStress, ConcurrentSweepsProduceExactResults) {
  ThreadPool pool(4);
  const auto grid = linspace(0.0, 1.0, 512);
  std::vector<std::vector<double>> results(3);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < results.size(); ++c) {
    callers.emplace_back([&, c] {
      results[c] = sweep(pool, grid, [c](double x) { return x * (1.0 + c); });
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < results.size(); ++c) {
    ASSERT_EQ(results[c].size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(results[c][i], grid[i] * (1.0 + c));
    }
  }
}

TEST(ThreadPoolStress, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int t = 0; t < 1000; ++t) {
      (void)pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait: the destructor's contract is to drain, then join.
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolStress, ObsRegistryMergeUnderPoolLoad) {
  // The metrics registry's concurrency contract under fire: pooled tasks
  // hammer thread-local counters/histograms (workers flush after every
  // task) while the main thread concurrently takes snapshots. TSan must
  // stay silent, and once the pool drains the merged counter must equal
  // the exact number of updates.
  blade::obs::Registry& r = blade::obs::registry();
  r.reset();
  const auto counter = r.intern("stress.obs_counter", blade::obs::Kind::Counter);
  const auto hist = r.intern("stress.obs_hist", blade::obs::Kind::Histogram);
  ThreadPool pool(4);
  constexpr int kTasks = 4000;
  constexpr int kHitsPerTask = 25;
  for (int t = 0; t < kTasks; ++t) {
    (void)pool.submit([&r, counter, hist, t] {
      for (int i = 0; i < kHitsPerTask; ++i) {
        r.add(counter);
        r.observe(hist, 1.0 + static_cast<double>((t + i) % 7));
      }
    });
    if (t % 256 == 0) {
      // Concurrent reader: sees only merged (flushed) state, any value
      // between 0 and the final total is legal — the point is no race.
      const auto snap = r.snapshot();
      const auto* mv = snap.find("stress.obs_counter");
      ASSERT_NE(mv, nullptr);
      EXPECT_LE(mv->count, static_cast<std::uint64_t>(kTasks) * kHitsPerTask);
    }
  }
  pool.wait_idle();
  const auto snap = r.snapshot();
  EXPECT_EQ(snap.find("stress.obs_counter")->count,
            static_cast<std::uint64_t>(kTasks) * kHitsPerTask);
  EXPECT_EQ(snap.find("stress.obs_hist")->hist.count(),
            static_cast<std::uint64_t>(kTasks) * kHitsPerTask);
}

TEST(ThreadPoolStress, PoolChurnConstructDestroyUnderWork) {
  // Rapid construct/submit/destroy cycles: the join/drain handshake in
  // the destructor must be airtight even when workers barely started.
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    for (int t = 0; t < 40; ++t) {
      (void)pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(counter.load(), 50 * 40);
}

}  // namespace
