// Runtime control plane units: the alias-table sampler, the online rate
// estimators, the sim-side failure plumbing (blade draining, dynamic
// dispatch), and the Controller's publish/shed/hysteresis mechanics.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"
#include "runtime/controller.hpp"
#include "runtime/estimator.hpp"
#include "sim/dispatcher.hpp"
#include "sim/failures.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "util/alias_table.hpp"

namespace {

using namespace blade;

// ---------------------------------------------------------------- alias

TEST(AliasTable, FractionsAreNormalizedWeights) {
  const util::AliasTable t(std::vector<double>{1.0, 3.0, 0.0, 4.0});
  ASSERT_EQ(t.size(), 4u);
  const auto& f = t.fractions();
  EXPECT_DOUBLE_EQ(f[0], 0.125);
  EXPECT_DOUBLE_EQ(f[1], 0.375);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
  EXPECT_DOUBLE_EQ(f[3], 0.5);
}

TEST(AliasTable, ZeroWeightEntriesAreNeverSampled) {
  const util::AliasTable t(std::vector<double>{0.0, 2.0, 0.0, 1.0, 0.0});
  // Sweep a dense grid of both uniforms, including the edges.
  for (int a = 0; a <= 200; ++a) {
    for (int b = 0; b <= 200; ++b) {
      const std::size_t i = t.sample(a / 200.0, b / 200.0);
      ASSERT_LT(i, 5u);
      EXPECT_TRUE(i == 1 || i == 3) << "u1=" << a / 200.0 << " u2=" << b / 200.0;
    }
  }
}

TEST(AliasTable, SampleFrequenciesMatchFractions) {
  const std::vector<double> w = {5.0, 1.0, 0.0, 2.0, 8.0};
  const util::AliasTable t(w);
  sim::RngStream rng(17, 0);
  std::vector<int> hits(w.size(), 0);
  const int n = 200000;
  for (int k = 0; k < n; ++k) ++hits[t.sample(rng.uniform(), rng.uniform())];
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / n, t.fractions()[i], 0.005) << "i=" << i;
  }
}

TEST(AliasTable, SingleEntryAlwaysWins) {
  const util::AliasTable t(std::vector<double>{7.0});
  EXPECT_EQ(t.sample(0.0, 0.0), 0u);
  EXPECT_EQ(t.sample(0.999, 0.999), 0u);
}

TEST(AliasTable, RejectsBadWeights) {
  EXPECT_THROW(util::AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(util::AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(util::AliasTable(std::vector<double>{1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(util::AliasTable(std::vector<double>{1.0, std::nan("")}), std::invalid_argument);
}

// ------------------------------------------------------------ estimators

TEST(EwmaRateEstimator, UnbiasedOnEvenlySpacedStream) {
  const double lambda = 8.0;
  runtime::EwmaRateEstimator est(4.0);
  for (int k = 1; k <= 2000; ++k) est.observe(k / lambda);
  // Evenly spaced arrivals carry a deterministic ripple bias of about
  // alpha/2 = 0.087 on top of the corrected estimate; stay above that.
  EXPECT_NEAR(est.rate(2000 / lambda), lambda, 0.02 * lambda);
}

TEST(EwmaRateEstimator, BiasCorrectionWorksFromTheFirstArrivals) {
  // Without the 1 - e^{-alpha t} correction a short observation window
  // underestimates grossly; with it, even t = half_life/2 is close.
  const double lambda = 20.0;
  runtime::EwmaRateEstimator est(10.0);
  for (int k = 1; k <= 100; ++k) est.observe(k / lambda);  // runs to t = 5
  EXPECT_NEAR(est.rate(5.0), lambda, 0.05 * lambda);
}

TEST(EwmaRateEstimator, TracksAStepChangeWithinHalfLives) {
  const double hl = 2.0;
  runtime::EwmaRateEstimator est(hl);
  double t = 0.0;
  for (int k = 0; k < 200; ++k) est.observe(t += 1.0 / 10.0);  // rate 10 to t=20
  for (int k = 0; k < 400; ++k) est.observe(t += 1.0 / 40.0);  // rate 40 for 10 units
  // 10 time units = 5 half-lives after the step: residual ~ (40-10)/32.
  EXPECT_NEAR(est.rate(t), 40.0, 2.0);
}

TEST(EwmaRateEstimator, ZeroBeforeAnyArrivalAndMonotonicTimeEnforced) {
  runtime::EwmaRateEstimator est(1.0);
  EXPECT_EQ(est.rate(10.0), 0.0);
  est.observe(1.0);
  EXPECT_THROW(est.observe(0.5), std::invalid_argument);
  EXPECT_THROW(runtime::EwmaRateEstimator(0.0), std::invalid_argument);
  est.reset(5.0);
  EXPECT_EQ(est.count(), 0u);
  EXPECT_EQ(est.rate(6.0), 0.0);
}

TEST(WindowRateEstimator, ExactOnEvenlySpacedStream) {
  const double lambda = 5.0;
  runtime::WindowRateEstimator est(10.0);
  for (int k = 1; k <= 500; ++k) est.observe(k / lambda);
  // 50 arrivals inside any 10-unit window.
  EXPECT_NEAR(est.rate(100.0), lambda, 0.1);
}

TEST(WindowRateEstimator, ForgetsArrivalsOutsideTheWindow) {
  runtime::WindowRateEstimator est(5.0);
  for (int k = 1; k <= 50; ++k) est.observe(k * 0.1);  // rate 10 on [0, 5]
  EXPECT_NEAR(est.rate(5.0), 10.0, 0.5);
  // Nothing arrives afterwards; by t = 11 the window is empty.
  EXPECT_EQ(est.rate(11.0), 0.0);
  EXPECT_THROW(runtime::WindowRateEstimator(0.0), std::invalid_argument);
}

// ------------------------------------------------- sim-side integration

TEST(ProbabilisticDispatcher, BinarySearchMatchesLinearScanSequence) {
  // The routing index is defined as the first i with cumulative[i] >= u;
  // the dispatcher's binary search must reproduce exactly the sequence a
  // linear scan yields on the same RNG stream (so no seeded statistical
  // test shifts).
  const std::vector<double> rates = {0.5, 3.0, 0.0, 1.25, 2.25};
  std::vector<double> cumulative(rates.size());
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    acc += rates[i] / total;
    cumulative[i] = acc;
  }
  cumulative.back() = 1.0;

  sim::ProbabilisticDispatcher d(rates, sim::RngStream(123, 9));
  sim::RngStream reference(123, 9);
  const std::vector<sim::ServerSim*> servers(rates.size(), nullptr);
  for (int k = 0; k < 20000; ++k) {
    const double u = reference.uniform();
    std::size_t expected = cumulative.size() - 1;
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      if (u <= cumulative[i]) {
        expected = i;
        break;
      }
    }
    ASSERT_EQ(d.route(servers), expected) << "draw " << k;
  }
}

TEST(DynamicWeightDispatcher, FollowsThePublishedTable) {
  auto table = std::make_shared<const util::AliasTable>(std::vector<double>{1.0, 0.0});
  std::atomic<std::shared_ptr<const util::AliasTable>> slot(table);
  sim::DynamicWeightDispatcher d([&slot] { return slot.load(); }, sim::RngStream(3, 3));
  const std::vector<sim::ServerSim*> servers(2, nullptr);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(d.route(servers), 0u);
  slot.store(std::make_shared<const util::AliasTable>(std::vector<double>{0.0, 1.0}));
  for (int k = 0; k < 100; ++k) EXPECT_EQ(d.route(servers), 1u);
  // Null table: uniform fallback still returns a valid index.
  slot.store(nullptr);
  for (int k = 0; k < 100; ++k) EXPECT_LT(d.route(servers), 2u);
  EXPECT_THROW(sim::DynamicWeightDispatcher(nullptr, sim::RngStream(1, 1)), std::invalid_argument);
}

TEST(ServerSim, BladeDrainIsGracefulAndRecoveryRestartsQueue) {
  sim::Engine engine;
  sim::ResponseTimeCollector collector;
  sim::ServerSim srv(engine, 2, 1.0, sim::SchedulingMode::Fcfs, collector);
  auto task = [](double work) {
    sim::Task t;
    t.cls = sim::TaskClass::Generic;
    t.work = work;
    return t;
  };
  srv.arrive(task(10.0));
  srv.arrive(task(10.0));
  EXPECT_EQ(srv.busy_blades(), 2u);

  // Drain to 0: both running tasks keep their blades and finish.
  srv.set_available_blades(0);
  EXPECT_EQ(srv.busy_blades(), 2u);
  srv.arrive(task(1.0));  // queues: no available blade
  engine.run_until(15.0);
  EXPECT_EQ(srv.completions(), 2u);
  EXPECT_EQ(srv.busy_blades(), 0u);
  EXPECT_EQ(srv.queued_tasks(), 1u);  // still waiting for a recovery

  // Recovery immediately starts the queued task.
  srv.set_available_blades(2);
  EXPECT_EQ(srv.busy_blades(), 1u);
  engine.run_until(20.0);
  EXPECT_EQ(srv.completions(), 3u);
  EXPECT_THROW(srv.set_available_blades(3), std::invalid_argument);
}

TEST(FailureSchedule, AppliesEventsAtTheRightTimes) {
  sim::Engine engine;
  sim::ResponseTimeCollector collector;
  sim::ServerSim srv(engine, 4, 1.0, sim::SchedulingMode::Fcfs, collector);
  std::vector<sim::ServerSim*> servers = {&srv};

  auto schedule = sim::single_outage(0, 5.0, 10.0);
  schedule.events.push_back({12.0, sim::FailureKind::Failure, 0, 3});    // partial loss
  schedule.events.push_back({14.0, sim::FailureKind::Recovery, 0, 1});   // partial return
  std::vector<double> seen_times;
  sim::schedule_failures(engine, schedule, servers,
                         [&](const sim::FailureEvent& e) { seen_times.push_back(e.time); });

  engine.run_until(4.0);
  EXPECT_EQ(srv.available_blades(), 4u);
  engine.run_until(6.0);
  EXPECT_EQ(srv.available_blades(), 0u);
  engine.run_until(11.0);
  EXPECT_EQ(srv.available_blades(), 4u);
  engine.run_until(13.0);
  EXPECT_EQ(srv.available_blades(), 1u);
  engine.run_until(15.0);
  EXPECT_EQ(srv.available_blades(), 2u);
  ASSERT_EQ(seen_times.size(), 4u);
  EXPECT_EQ(seen_times.front(), 5.0);

  sim::FailureSchedule bad;
  bad.events.push_back({1.0, sim::FailureKind::Failure, 7, 0});
  EXPECT_THROW(sim::schedule_failures(engine, bad, servers), std::invalid_argument);
  EXPECT_THROW(sim::single_outage(0, 5.0, 5.0), std::invalid_argument);
}

// ------------------------------------------------------------ controller

runtime::ControllerConfig quick_config() {
  runtime::ControllerConfig cfg;
  cfg.half_life = 2.0;
  cfg.check_interval = 8;
  cfg.min_arrivals = 8;
  return cfg;
}

TEST(Controller, ConfigValidation) {
  const auto c = model::paper_example_cluster();
  auto bad = quick_config();
  bad.half_life = 0.0;
  EXPECT_THROW(runtime::Controller(c, bad), std::invalid_argument);
  bad = quick_config();
  bad.utilization_ceiling = 1.0;
  EXPECT_THROW(runtime::Controller(c, bad), std::invalid_argument);
  bad = quick_config();
  bad.check_interval = 0;
  EXPECT_THROW(runtime::Controller(c, bad), std::invalid_argument);
  bad = quick_config();
  bad.drift_threshold = -1.0;
  EXPECT_THROW(runtime::Controller(c, bad), std::invalid_argument);
}

TEST(Controller, PublishesFeasibleFallbackAtConstruction) {
  const auto c = model::paper_example_cluster();
  runtime::Controller ctrl(c, quick_config());
  const auto f = ctrl.routing_fractions();
  ASSERT_EQ(f.size(), c.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_GT(f[i], 0.0) << i;
    sum += f[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(ctrl.shed_probability(), 0.0);
  EXPECT_EQ(ctrl.stats().publications, 1u);
}

TEST(Controller, InitialLambdaSolvesTheStaticOptimum) {
  const auto c = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  auto cfg = quick_config();
  cfg.initial_lambda = lambda;
  runtime::Controller ctrl(c, cfg);
  const auto sol = opt::LoadDistributionOptimizer(c, queue::Discipline::Fcfs).optimize(lambda);
  const auto f = ctrl.routing_fractions();
  ASSERT_EQ(f.size(), c.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i], sol.rates[i] / lambda, 1e-9) << i;
  }
  EXPECT_EQ(ctrl.stats().resolves, 1u);
}

TEST(Controller, FailureZeroesTheServerAndRecoveryRestoresIt) {
  const auto c = model::paper_example_cluster();
  auto cfg = quick_config();
  cfg.initial_lambda = model::paper_example_lambda();
  runtime::Controller ctrl(c, cfg);

  const auto before = ctrl.routing_fractions();
  ctrl.on_failure(1.0, 3);
  EXPECT_EQ(ctrl.available_blades(3), 0u);
  EXPECT_EQ(ctrl.alive_servers(), c.size() - 1);
  auto f = ctrl.routing_fractions();
  EXPECT_EQ(f[3], 0.0);
  double sum = 0.0;
  for (double x : f) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);

  // Partial recovery: 2 of 8 blades return; the split stays normalized
  // (the clamped special preload may keep the share at zero).
  ctrl.on_recovery(2.0, 3, 2);
  EXPECT_EQ(ctrl.available_blades(3), 2u);
  f = ctrl.routing_fractions();
  sum = 0.0;
  for (double x : f) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);

  // Full recovery re-solves the original topology: same split as before
  // the outage (the estimators never warmed, so the inputs are identical).
  ctrl.on_recovery(3.0, 3);
  EXPECT_EQ(ctrl.available_blades(3), c.server(3).size());
  f = ctrl.routing_fractions();
  ASSERT_EQ(f.size(), before.size());
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_NEAR(f[i], before[i], 1e-9) << i;
  EXPECT_EQ(ctrl.stats().failures, 1u);
  EXPECT_EQ(ctrl.stats().recoveries, 2u);
  EXPECT_GE(ctrl.stats().resolves, 4u);  // initial + one per event
}

TEST(Controller, AllBladesDownMeansShedEverything) {
  const auto c = model::make_cluster({2, 2}, {1.0, 1.0}, 1.0, 0.1);
  auto cfg = quick_config();
  cfg.initial_lambda = 1.0;
  runtime::Controller ctrl(c, cfg);
  ctrl.on_failure(1.0, 0);
  ctrl.on_failure(1.0, 1);
  EXPECT_EQ(ctrl.weights(), nullptr);
  EXPECT_TRUE(ctrl.routing_fractions().empty());
  EXPECT_EQ(ctrl.shed_probability(), 1.0);
  EXPECT_FALSE(ctrl.on_generic_arrival(2.0, 0.0));
  EXPECT_FALSE(ctrl.on_generic_arrival(2.1, 0.999999));
  // Recovery re-publishes a usable split.
  ctrl.on_recovery(3.0, 0);
  EXPECT_NE(ctrl.weights(), nullptr);
  EXPECT_LT(ctrl.shed_probability(), 1.0);
}

TEST(Controller, AdmissionControlShedsTheMinimumFraction) {
  // One server, capacity 4; initial lambda far above the ceiling.
  const auto c = model::Cluster({model::BladeServer(4, 1.0, 0.0)}, 1.0);
  auto cfg = quick_config();
  cfg.utilization_ceiling = 0.9;
  cfg.initial_lambda = 6.0;  // capacity 4 -> admit 3.6, shed 0.4
  runtime::Controller ctrl(c, cfg);
  EXPECT_NEAR(ctrl.shed_probability(), 1.0 - 3.6 / 6.0, 1e-12);
  EXPECT_EQ(ctrl.stats().infeasible_resolves, 1u);
  // u below the shed probability drops the task, above admits it.
  EXPECT_FALSE(ctrl.on_generic_arrival(0.1, 0.1));
  EXPECT_TRUE(ctrl.on_generic_arrival(0.2, 0.9));
  EXPECT_EQ(ctrl.stats().shed, 1u);
  EXPECT_EQ(ctrl.stats().admitted, 1u);
  EXPECT_NEAR(ctrl.stats().shed_fraction(), 0.5, 1e-12);
}

TEST(Controller, SpecialEstimateFeedsTheSolveOnceWarm) {
  // Nominal special rate 0, but a live special stream at rate 2 on server
  // 0 must reduce its generic share once the estimator warms up.
  const auto c = model::Cluster(
      {model::BladeServer(4, 1.0, 0.0), model::BladeServer(4, 1.0, 0.0)}, 1.0);
  auto cfg = quick_config();
  cfg.half_life = 8.0;  // keeps the deterministic-stream ripple ~ alpha/2 small
  cfg.initial_lambda = 3.0;
  runtime::Controller ctrl(c, cfg);
  EXPECT_NEAR(ctrl.routing_fractions()[0], 0.5, 1e-9);
  double t = 0.0;
  for (int k = 0; k < 200; ++k) ctrl.on_special_arrival(t += 0.5, 0);
  EXPECT_NEAR(ctrl.estimated_special_rate(0, t), 2.0, 0.1);
  ctrl.resolve_now(t);
  const auto f = ctrl.routing_fractions();
  EXPECT_LT(f[0], 0.40);  // preloaded server now takes less generic load
  EXPECT_GT(f[1], 0.60);
}

TEST(Controller, HysteresisSkipsStationaryDriftChecks) {
  const auto c = model::paper_example_cluster();
  auto cfg = quick_config();
  cfg.check_interval = 8;
  cfg.min_arrivals = 64;  // first estimate-driven solve sees a settled rate
  cfg.drift_threshold = 0.05;
  runtime::Controller ctrl(c, cfg);
  const double lambda = 20.0;
  double t = 0.0;
  for (int k = 0; k < 4000; ++k) ctrl.on_generic_arrival(t += 1.0 / lambda, 0.5);
  const auto& st = ctrl.stats();
  // One estimate-driven solve once warm, then stationary checks skip.
  EXPECT_GE(st.skipped_by_hysteresis, 400u);
  EXPECT_LE(st.resolves, 5u);
  EXPECT_NEAR(ctrl.last_solved_lambda(), lambda, 0.05 * lambda);
  EXPECT_EQ(st.generic_arrivals, 4000u);
}

TEST(Controller, LoadSwingTriggersAReSolve) {
  const auto c = model::paper_example_cluster();
  auto cfg = quick_config();
  cfg.drift_threshold = 0.05;
  runtime::Controller ctrl(c, cfg);
  double t = 0.0;
  for (int k = 0; k < 1000; ++k) ctrl.on_generic_arrival(t += 1.0 / 10.0, 0.5);
  const auto solves_before = ctrl.stats().resolves;
  for (int k = 0; k < 1000; ++k) ctrl.on_generic_arrival(t += 1.0 / 35.0, 0.5);
  EXPECT_GT(ctrl.stats().resolves, solves_before);
  EXPECT_NEAR(ctrl.last_solved_lambda(), 35.0, 3.0);
}

TEST(Controller, RejectsOutOfRangeServerIndices) {
  const auto c = model::make_cluster({2, 2}, {1.0, 1.0}, 1.0, 0.1);
  runtime::Controller ctrl(c, quick_config());
  EXPECT_THROW(ctrl.on_special_arrival(1.0, 2), std::invalid_argument);
  EXPECT_THROW(ctrl.on_failure(1.0, 2), std::invalid_argument);
  EXPECT_THROW(ctrl.on_recovery(1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)ctrl.available_blades(2), std::invalid_argument);
  EXPECT_THROW((void)ctrl.estimated_special_rate(2, 1.0), std::invalid_argument);
}

// The TSan-facing check: dispatch threads hammer the read side while the
// control thread republishes through failures, recoveries, and re-solves.
// Labeled fast so every sanitizer tier runs it.
TEST(Controller, PublishWhileSamplingIsRaceFree) {
  const auto c = model::paper_example_cluster();
  auto cfg = quick_config();
  cfg.initial_lambda = model::paper_example_lambda();
  runtime::Controller ctrl(c, cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sampled{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&ctrl, &stop, &sampled, r] {
      sim::RngStream rng(99, static_cast<std::uint64_t>(r));
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto table = ctrl.weights();
        if (table) {
          const std::size_t i = table->sample(rng.uniform(), rng.uniform());
          ASSERT_LT(i, table->size());
        }
        (void)ctrl.shed_probability();
        ++n;
      }
      sampled.fetch_add(n);
    });
  }

  double t = 0.0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t victim = static_cast<std::size_t>(round) % c.size();
    ctrl.on_failure(t += 0.01, victim);
    for (int k = 0; k < 20; ++k) ctrl.on_generic_arrival(t += 0.01, 0.5);
    ctrl.on_recovery(t += 0.01, victim);
    ctrl.resolve_now(t);
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_GT(sampled.load(), 0u);
  EXPECT_GE(ctrl.stats().publications, 400u);
}

}  // namespace
