// cloud module: experiment descriptors (tables/figures), series
// rendering, and report formatting.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/experiments.hpp"
#include "cloud/report.hpp"
#include "cloud/series.hpp"

namespace {

using namespace blade;
using cloud::example_table;
using cloud::figure;
using queue::Discipline;

TEST(ExampleTables, Table1MatchesPaper) {
  const auto t = example_table(Discipline::Fcfs);
  ASSERT_EQ(t.rows.size(), 7u);
  EXPECT_NEAR(t.lambda_total, 23.52, 1e-10);
  EXPECT_NEAR(t.response_time, 0.8964703, 1e-6);
  EXPECT_NEAR(t.rows[0].generic_rate, 0.6652046, 2e-6);
  EXPECT_NEAR(t.rows[6].utilization, 0.6302439, 1e-6);
  EXPECT_EQ(t.rows[3].size, 8u);
  EXPECT_NEAR(t.rows[3].service_time, 1.0 / 1.3, 1e-12);
}

TEST(ExampleTables, Table2MatchesPaper) {
  const auto t = example_table(Discipline::SpecialPriority);
  EXPECT_NEAR(t.response_time, 0.9209392, 1e-6);
  EXPECT_NEAR(t.rows[0].generic_rate, 0.5908113, 2e-6);
  EXPECT_NEAR(t.rows[6].generic_rate, 5.0041912, 2e-6);
}

TEST(Figures, RejectsUnknownNumber) {
  EXPECT_THROW((void)figure(3), std::invalid_argument);
  EXPECT_THROW((void)figure(16), std::invalid_argument);
}

TEST(Figures, Fig4HasFiveIncreasingSeries) {
  const auto fig = figure(4, 12);
  ASSERT_EQ(fig.series.size(), 5u);
  for (const auto& s : fig.series) {
    ASSERT_GE(s.x.size(), 4u) << s.label;
    ASSERT_EQ(s.x.size(), s.y.size());
    for (std::size_t i = 1; i < s.y.size(); ++i) {
      EXPECT_GT(s.y[i], s.y[i - 1]) << s.label << " point " << i;
    }
  }
}

TEST(Figures, PrioritySeriesDominatesFcfs) {
  // Fig 5 (priority) lies above Fig 4 (fcfs) pointwise on shared grids.
  const auto f4 = figure(4, 10);
  const auto f5 = figure(5, 10);
  for (std::size_t g = 0; g < 5; ++g) {
    const auto& a = f4.series[g];
    const auto& b = f5.series[g];
    const std::size_t n = std::min(a.x.size(), b.x.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(a.x[i], b.x[i]);
      EXPECT_GT(b.y[i], a.y[i]);
    }
  }
}

TEST(Figures, BiggerClustersAreFasterAtHighLoad) {
  // Fig 4's group5 (63 blades) must beat group1 (49 blades) at high load.
  const auto fig = figure(4, 12);
  const auto& g1 = fig.series.front();
  const auto& g5 = fig.series.back();
  // Compare at g1's last grid point (present in both series).
  const double x = g1.x.back();
  for (std::size_t i = 0; i < g5.x.size(); ++i) {
    if (g5.x[i] == x) {
      EXPECT_LT(g5.y[i], g1.y.back());
      return;
    }
  }
  FAIL() << "shared grid point not found";
}

TEST(Figures, HeterogeneityBarelyMattersButHelps) {
  // The paper's "surprising" observation on Figs. 12-15: the groups'
  // curves nearly coincide, with more heterogeneity giving (slightly)
  // smaller T'. At light load heterogeneity *does* help noticeably (the
  // fast blades dominate); the near-coincidence is a moderate-to-high
  // load phenomenon, so the closeness check applies to the upper half of
  // the shared grid.
  // Size heterogeneity (fig12): the five curves essentially coincide at
  // every load (within a few percent).
  {
    const auto fig = figure(12, 10);
    const auto& most = fig.series.front();
    const auto& least = fig.series.back();
    const std::size_t n = std::min(most.x.size(), least.x.size());
    ASSERT_GT(n, 3u);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(most.y[i], least.y[i] + 1e-9) << "fig12 point " << i;
      EXPECT_LT(least.y[i] / most.y[i], 1.15) << "fig12 point " << i;
    }
  }
  // Speed heterogeneity (fig14): heterogeneity helps a lot at light load
  // (fast blades dominate) and the curves converge toward saturation.
  {
    const auto fig = figure(14, 10);
    const auto& most = fig.series.front();
    const auto& least = fig.series.back();
    const std::size_t n = std::min(most.x.size(), least.x.size());
    ASSERT_GT(n, 3u);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(most.y[i], least.y[i] + 1e-9) << "fig14 point " << i;
    }
    const double first_ratio = least.y[0] / most.y[0];
    const double last_ratio = least.y[n - 1] / most.y[n - 1];
    EXPECT_LT(last_ratio, first_ratio);
    EXPECT_LT(last_ratio, 1.3);
  }
}

TEST(Figures, FasterSpeedsAndSmallerTasksHelp) {
  // fig06: larger s shifts curves down; fig08: larger rbar shifts up.
  const auto f6 = figure(6, 8);
  const auto f8 = figure(8, 8);
  // First common grid point of all series.
  for (std::size_t g = 1; g < 5; ++g) {
    EXPECT_LT(f6.series[g].y[0], f6.series[g - 1].y[0]) << "fig06 group " << g;
    EXPECT_GT(f8.series[g].y[0], f8.series[g - 1].y[0]) << "fig08 group " << g;
  }
}

TEST(Figures, HigherPreloadHurts) {
  const auto f10 = figure(10, 8);
  for (std::size_t g = 1; g < 5; ++g) {
    EXPECT_GT(f10.series[g].y[0], f10.series[g - 1].y[0]) << "fig10 group " << g;
  }
}

TEST(Series, CsvLongFormat) {
  cloud::FigureData fig;
  fig.id = "t";
  fig.xlabel = "x";
  fig.ylabel = "y";
  fig.series.push_back({"a", {1.0, 2.0}, {3.0, 4.0}});
  const auto csv = cloud::to_csv(fig, 1);
  EXPECT_EQ(csv, "series,x,y\na,1.0,3.0\na,2.0,4.0\n");
}

TEST(Series, AsciiPlotRendersLegendAndFrame) {
  cloud::FigureData fig;
  fig.title = "demo";
  fig.xlabel = "x";
  fig.ylabel = "y";
  fig.series.push_back({"up", {0.0, 1.0, 2.0}, {0.0, 1.0, 2.0}});
  const auto art = cloud::ascii_plot(fig, 24, 8);
  EXPECT_NE(art.find("demo"), std::string::npos);
  EXPECT_NE(art.find("*=up"), std::string::npos);
  EXPECT_THROW((void)cloud::ascii_plot(fig, 4, 2), std::invalid_argument);
}

TEST(Reports, ExampleTableRendering) {
  const auto t = example_table(Discipline::Fcfs);
  const auto out = cloud::render_example_table(t, "Table 1");
  EXPECT_NE(out.find("Table 1"), std::string::npos);
  EXPECT_NE(out.find("0.8964703"), std::string::npos);
  EXPECT_NE(out.find("lambda'_i"), std::string::npos);
}

TEST(Reports, AblationRendering) {
  const auto rows = cloud::policy_ablation(model::paper_example_cluster(), Discipline::Fcfs,
                                           {0.5});
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& r : rows) {
    EXPECT_GE(r.penalty, -1e-9) << r.policy;
    EXPECT_NEAR(r.optimal_T, 0.8964703, 1e-5);
  }
  const auto out = cloud::render_ablation(rows);
  EXPECT_NE(out.find("equal-split"), std::string::npos);
}

TEST(Reports, ValidationSmokeTest) {
  // Small replication count for test speed; the bench runs the full study.
  const auto rows = cloud::validate_examples(3, 8000.0, 800.0);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    EXPECT_NEAR(r.simulated, r.analytic, 0.05 * r.analytic) << r.label;
  }
  const auto out = cloud::render_validation(rows);
  EXPECT_NE(out.find("analytic"), std::string::npos);
}

}  // namespace
