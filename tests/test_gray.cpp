// Gray-failure battery (labels: gray;sim): the sim layer's gray fault
// semantics (slowdown stretches service, stalls park and resume, the
// trace grammar round-trips), the HealthTracker's scoring and quarantine
// state machine edge by edge, the Controller's quarantine flow
// (cheap redistribution, probation re-solve, recovery), the policy
// layer's quarantine-aware routing tiers, and the 200-seed gray-chaos
// battery: after every injected fault clears, the control plane must
// reconverge to the healthy optimum and must never have routed to a
// quarantined server while a healthy alternative existed. On a battery
// violation the flight recorder is dumped to RECORDER_gray_battery.jsonl
// so CI uploads the decision trail with the failure.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "model/cluster.hpp"
#include "obs/recorder.hpp"
#include "policy/policy.hpp"
#include "runtime/controller.hpp"
#include "runtime/health.hpp"
#include "runtime/replay.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/server_sim.hpp"

namespace {

using namespace blade;
using policy::PolicyConfig;
using policy::PolicyKind;
using policy::ServerState;
using policy::StateView;
using runtime::HealthConfig;
using runtime::HealthState;
using runtime::HealthTracker;
using runtime::HealthTransition;
using runtime::ReplayEvent;
using runtime::ReplayTrace;

// --- sim layer: gray fault semantics --------------------------------------

TEST(GraySim, SlowdownStretchesRemainingWork) {
  sim::Engine e;
  sim::ResponseTimeCollector col;
  sim::ServerSim s(e, 1, 1.0, sim::SchedulingMode::Fcfs, col);
  std::vector<double> done;
  s.set_completion_observer([&done](const sim::Task&, double t) { done.push_back(t); });

  // Nominal: work 1.0 at speed 1.0 finishes at t = 1.
  s.arrive({sim::TaskClass::Generic, 0.0, 1.0});
  // Mid-flight slowdown at t = 0.5: the remaining 0.5 work now runs at
  // rate 0.5, so completion moves from 1.0 to 0.5 + 0.5/0.5 = 1.5.
  e.schedule_at(0.5, [&s] { s.set_speed_factor(0.5); });
  e.run_until(10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 1.5, 1e-9);
  EXPECT_NEAR(s.effective_speed(), 0.5, 1e-12);

  // Clearing the slowdown restores nominal service for new tasks.
  s.set_speed_factor(1.0);
  done.clear();
  s.arrive({sim::TaskClass::Generic, e.now(), 2.0});
  const double start = e.now();
  e.run_until(start + 10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], start + 2.0, 1e-9);
}

TEST(GraySim, StallParksAndResumesWithWorkIntact) {
  sim::Engine e;
  sim::ResponseTimeCollector col;
  sim::ServerSim s(e, 1, 1.0, sim::SchedulingMode::Fcfs, col);
  std::vector<double> done;
  s.set_completion_observer([&done](const sim::Task&, double t) { done.push_back(t); });

  s.arrive({sim::TaskClass::Generic, 0.0, 1.0});
  e.schedule_at(0.4, [&s] { s.set_stalled(true); });
  e.schedule_at(1.4, [&s] { s.set_stalled(false); });
  e.run_until(10.0);
  // 0.4 work done before the stall, one unit frozen, 0.6 after: t = 2.0.
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_FALSE(s.stalled());
  EXPECT_NEAR(s.effective_speed(), 1.0, 1e-12);
}

TEST(GraySim, StalledServerKeepsAcceptingAndReportsZeroSpeed) {
  sim::Engine e;
  sim::ResponseTimeCollector col;
  sim::ServerSim s(e, 2, 1.5, sim::SchedulingMode::Fcfs, col);
  s.set_stalled(true);
  EXPECT_EQ(s.effective_speed(), 0.0);
  s.arrive({sim::TaskClass::Generic, 0.0, 1.0});
  s.arrive({sim::TaskClass::Generic, 0.0, 1.0});
  s.arrive({sim::TaskClass::Generic, 0.0, 1.0});
  e.run_until(5.0);
  EXPECT_EQ(s.completions(), 0u);
  EXPECT_EQ(s.tasks_in_system(), 3u);  // availability stays nominal: gray, not dark
  EXPECT_EQ(s.available_blades(), 2u);
  s.set_stalled(false);
  e.run_until(20.0);
  EXPECT_EQ(s.completions(), 3u);
}

TEST(GrayTrace, GrammarRoundTripsAndRejectsBadFactors) {
  const std::string text =
      "horizon 10\nseed 3\nrate 0 2.5\nslow 1 0 0.5\nstall 2 1\nunstall 3 1\nslow 4 0 1\n";
  const auto trace = runtime::parse_replay_trace(text);
  ASSERT_EQ(trace.events.size(), 5u);
  EXPECT_EQ(trace.events[1].kind, ReplayEvent::Kind::Slow);
  EXPECT_NEAR(trace.events[1].factor, 0.5, 1e-12);
  EXPECT_EQ(trace.events[2].kind, ReplayEvent::Kind::Stall);
  EXPECT_EQ(trace.events[2].server, 1u);
  EXPECT_EQ(trace.events[3].kind, ReplayEvent::Kind::Unstall);
  EXPECT_EQ(trace.events[4].kind, ReplayEvent::Kind::Slow);
  EXPECT_NEAR(trace.events[4].factor, 1.0, 1e-12);

  // to_text round-trip preserves the gray events.
  const auto again = runtime::parse_replay_trace(runtime::to_text(trace));
  ASSERT_EQ(again.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, trace.events[i].kind);
    EXPECT_NEAR(again.events[i].factor, trace.events[i].factor, 1e-9);
  }

  // Factor outside (0, 1] is a line-numbered parse error.
  auto bad = runtime::try_parse_replay_trace("horizon 10\nslow 1 0 0\n");
  ASSERT_FALSE(bad);
  EXPECT_NE(bad.error().context.find("line 2"), std::string::npos);
  bad = runtime::try_parse_replay_trace("horizon 10\nslow 1 0 1.5\n");
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error().code, ErrorCode::ParseError);
}

// --- HealthTracker: scoring + state machine -------------------------------

HealthConfig fast_health() {
  HealthConfig cfg;
  cfg.enabled = true;
  cfg.suspect_dwell = 1.0;
  cfg.quarantine_dwell = 5.0;
  cfg.probation_dwell = 3.0;
  return cfg;
}

TEST(HealthTracker, ConfigValidation) {
  HealthConfig cfg = fast_health();
  cfg.suspect_threshold = 1.2;
  EXPECT_THROW(HealthTracker(2, cfg), std::invalid_argument);
  cfg = fast_health();
  cfg.quarantine_threshold = cfg.suspect_threshold + 0.1;  // must be <= suspect
  EXPECT_THROW(HealthTracker(2, cfg), std::invalid_argument);
  cfg = fast_health();
  cfg.recover_threshold = cfg.suspect_threshold;  // hysteresis requires >
  EXPECT_THROW(HealthTracker(2, cfg), std::invalid_argument);
  cfg = fast_health();
  cfg.probe_speed_floor = 0.0;
  EXPECT_THROW(HealthTracker(2, cfg), std::invalid_argument);
}

TEST(HealthTracker, DisabledTrackerScoresNothing) {
  HealthConfig cfg;  // enabled = false
  HealthTracker tracker(2, cfg);
  std::vector<HealthTransition> out;
  double t = 0.0;
  for (int k = 0; k < 100; ++k) tracker.on_dispatch(t += 0.1, 0);
  EXPECT_FALSE(tracker.evaluate(t, out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tracker.state(0), HealthState::Healthy);
  EXPECT_TRUE(tracker.routable(0));
}

TEST(HealthTracker, EvidenceGatingHoldsFireWithoutFlow) {
  HealthTracker tracker(2, fast_health());
  std::vector<HealthTransition> out;
  // Below min_dispatches: zero completions is not yet evidence.
  double t = 0.0;
  for (int k = 0; k < 8; ++k) tracker.on_dispatch(t += 0.1, 0);
  EXPECT_FALSE(tracker.evaluate(t, out));
  EXPECT_EQ(tracker.state(0), HealthState::Healthy);
  EXPECT_NEAR(tracker.score(0), 1.0, 1e-12);
  // Server 1 saw no traffic at all: also no evidence, stays Healthy.
  EXPECT_EQ(tracker.state(1), HealthState::Healthy);
}

TEST(HealthTracker, DeadCompletionsWalkToQuarantineFastPath) {
  HealthTracker tracker(2, fast_health());
  std::vector<HealthTransition> out;
  double t = 0.0;
  for (int k = 0; k < 32; ++k) tracker.on_dispatch(t += 0.1, 0);
  ASSERT_TRUE(tracker.evaluate(t, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, HealthState::Healthy);
  EXPECT_EQ(out[0].to, HealthState::Suspect);
  EXPECT_LT(out[0].score, 0.7);
  EXPECT_TRUE(tracker.routable(0));  // Suspect does not fence routing

  // Score ~0 is below the quarantine threshold: the fast path fires on
  // the very next evaluation, no dwell wait.
  for (int k = 0; k < 4; ++k) tracker.on_dispatch(t += 0.1, 0);
  out.clear();
  ASSERT_TRUE(tracker.evaluate(t, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, HealthState::Quarantined);
  EXPECT_FALSE(tracker.routable(0));
  EXPECT_EQ(tracker.quarantined_count(), 1u);
  // The frozen probe factor is the floored score.
  EXPECT_GE(tracker.speed_factor(0), fast_health().probe_speed_floor);
  EXPECT_LE(tracker.speed_factor(0), 1.0);
  // The healthy neighbor is untouched.
  EXPECT_EQ(tracker.state(1), HealthState::Healthy);
}

TEST(HealthTracker, SuspectRecoversWhenCompletionsCatchUp) {
  HealthTracker tracker(1, fast_health());
  std::vector<HealthTransition> out;
  double t = 0.0;
  for (int k = 0; k < 24; ++k) tracker.on_dispatch(t += 0.1, 0);
  ASSERT_TRUE(tracker.evaluate(t, out));
  ASSERT_EQ(tracker.state(0), HealthState::Suspect);
  // Backlog drains: completions at the dispatch cadence push the score
  // back through the recover threshold (capped at 1.5).
  for (int k = 0; k < 64; ++k) {
    tracker.on_dispatch(t += 0.1, 0);
    tracker.on_completion(t, 0);
    tracker.on_completion(t, 0);
  }
  out.clear();
  ASSERT_TRUE(tracker.evaluate(t, out));
  EXPECT_EQ(tracker.state(0), HealthState::Healthy);
  EXPECT_LE(tracker.score(0), 1.5);  // drain burst capped, not super-powered
}

TEST(HealthTracker, FullQuarantineProbationRecoveryCycle) {
  const HealthConfig cfg = fast_health();
  HealthTracker tracker(1, cfg);
  std::vector<HealthTransition> out;
  double t = 0.0;
  for (int k = 0; k < 40; ++k) tracker.on_dispatch(t += 0.1, 0);
  (void)tracker.evaluate(t, out);           // -> Suspect
  (void)tracker.evaluate(t += 0.1, out);    // -> Quarantined (fast path)
  ASSERT_EQ(tracker.state(0), HealthState::Quarantined);

  // Quarantine exit is purely dwell-based (no traffic, no score).
  out.clear();
  EXPECT_FALSE(tracker.evaluate(t + cfg.quarantine_dwell / 2.0, out));
  t += cfg.quarantine_dwell + 0.1;
  ASSERT_TRUE(tracker.evaluate(t, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, HealthState::Probation);
  EXPECT_TRUE(tracker.routable(0));  // probation traffic must flow
  EXPECT_EQ(tracker.quarantined_count(), 0u);

  // Healthy probation flow through the dwell clears the blade.
  const double probation_start = t;
  while (t < probation_start + cfg.probation_dwell + 0.5) {
    tracker.on_dispatch(t += 0.1, 0);
    tracker.on_completion(t, 0);
  }
  out.clear();
  ASSERT_TRUE(tracker.evaluate(t, out));
  EXPECT_EQ(tracker.state(0), HealthState::Healthy);
  EXPECT_NEAR(tracker.speed_factor(0), 1.0, 1e-12);
}

TEST(HealthTracker, ProbationRelapseRequarantines) {
  const HealthConfig cfg = fast_health();
  HealthTracker tracker(1, cfg);
  std::vector<HealthTransition> out;
  double t = 0.0;
  for (int k = 0; k < 40; ++k) tracker.on_dispatch(t += 0.1, 0);
  (void)tracker.evaluate(t, out);
  (void)tracker.evaluate(t += 0.1, out);
  t += cfg.quarantine_dwell + 0.1;
  (void)tracker.evaluate(t, out);
  ASSERT_EQ(tracker.state(0), HealthState::Probation);

  // Probation scores only probation-era flow: the stale quarantine-decayed
  // estimators were reset, so the blade needs fresh evidence to relapse.
  for (int k = 0; k < 32; ++k) tracker.on_dispatch(t += 0.1, 0);
  out.clear();
  ASSERT_TRUE(tracker.evaluate(t, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, HealthState::Probation);
  EXPECT_EQ(out[0].to, HealthState::Quarantined);
  EXPECT_EQ(tracker.quarantined_count(), 1u);
}

TEST(HealthTracker, ResetServerSupersedesGrayHistory) {
  HealthTracker tracker(2, fast_health());
  std::vector<HealthTransition> out;
  double t = 0.0;
  for (int k = 0; k < 40; ++k) tracker.on_dispatch(t += 0.1, 0);
  (void)tracker.evaluate(t, out);
  (void)tracker.evaluate(t += 0.1, out);
  ASSERT_EQ(tracker.state(0), HealthState::Quarantined);
  // A hard failure/recovery resets the gray view: state machine back to
  // Healthy, estimators re-baselined, quarantine count consistent.
  tracker.reset_server(0, t);
  EXPECT_EQ(tracker.state(0), HealthState::Healthy);
  EXPECT_EQ(tracker.quarantined_count(), 0u);
  EXPECT_NEAR(tracker.score(0), 1.0, 1e-12);
  out.clear();
  EXPECT_FALSE(tracker.evaluate(t + 1.0, out));  // no leftover evidence
}

// --- Controller: quarantine flow ------------------------------------------

model::Cluster gray_cluster() { return model::make_cluster({4, 2, 1}, {1.0, 1.5, 2.0}, 1.0, 0.2); }

runtime::ControllerConfig gray_cfg(const model::Cluster& cluster) {
  runtime::ControllerConfig cfg;
  cfg.half_life = 2.0;
  cfg.initial_lambda = 0.5 * cluster.max_generic_rate();
  cfg.check_interval = 8;
  cfg.health = fast_health();
  return cfg;
}

/// Drives matched dispatch/completion flow on `healthy` servers and
/// dispatch-only flow on `dead` for `steps` ticks of 0.1.
void feed(runtime::Controller& ctrl, double& t, int steps, const std::vector<std::size_t>& healthy,
          const std::vector<std::size_t>& dead) {
  for (int k = 0; k < steps; ++k) {
    t += 0.1;
    for (std::size_t i : healthy) {
      ctrl.on_dispatch(t, i);
      ctrl.on_completion(t, i);
    }
    for (std::size_t i : dead) ctrl.on_dispatch(t, i);
  }
}

TEST(ControllerQuarantine, CheapRedistributionZeroesTheFraction) {
  const auto cluster = gray_cluster();
  runtime::Controller ctrl(cluster, gray_cfg(cluster));
  const auto healthy_fractions = ctrl.routing_fractions();
  ASSERT_GT(healthy_fractions[0], 0.0);
  const std::uint64_t resolves_before = ctrl.stats().resolves;

  double t = 0.0;
  feed(ctrl, t, 60, {1, 2}, {0});
  EXPECT_EQ(ctrl.health_state(0), HealthState::Quarantined);
  EXPECT_GE(ctrl.stats().quarantines, 1u);
  EXPECT_GE(ctrl.stats().quarantine_publications, 1u);
  // The quarantine publication is the cheap path: renormalized current
  // fractions, no re-solve.
  EXPECT_EQ(ctrl.stats().resolves, resolves_before);

  const auto fenced = ctrl.routing_fractions();
  EXPECT_EQ(fenced[0], 0.0);
  double sum = 0.0;
  for (double f : fenced) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Healthy servers keep their relative proportions (renormalization).
  EXPECT_NEAR(fenced[1] / fenced[2], healthy_fractions[1] / healthy_fractions[2], 1e-9);
}

TEST(ControllerQuarantine, ProbationTriggersRealResolve) {
  const auto cluster = gray_cluster();
  const auto cfg = gray_cfg(cluster);
  runtime::Controller ctrl(cluster, cfg);
  double t = 0.0;
  feed(ctrl, t, 60, {1, 2}, {0});
  ASSERT_EQ(ctrl.health_state(0), HealthState::Quarantined);
  const std::uint64_t resolves_before = ctrl.stats().resolves;

  // Dwell out the quarantine; keep flow on the healthy servers so
  // evaluations keep firing.
  t += cfg.health.quarantine_dwell;
  feed(ctrl, t, 20, {1, 2}, {});
  EXPECT_EQ(ctrl.health_state(0), HealthState::Probation);
  EXPECT_GE(ctrl.stats().probations, 1u);
  EXPECT_GT(ctrl.stats().resolves, resolves_before);  // degraded-speed re-solve

  // Healthy probation flow through the dwell restores the blade and its
  // nominal share.
  t += cfg.health.probation_dwell;
  feed(ctrl, t, 40, {0, 1, 2}, {});
  EXPECT_EQ(ctrl.health_state(0), HealthState::Healthy);
  EXPECT_GE(ctrl.stats().health_recoveries, 1u);
  const auto restored = ctrl.routing_fractions();
  EXPECT_GT(restored[0], 0.0);
}

TEST(ControllerQuarantine, HardFailureSupersedesGray) {
  const auto cluster = gray_cluster();
  runtime::Controller ctrl(cluster, gray_cfg(cluster));
  double t = 0.0;
  feed(ctrl, t, 60, {1, 2}, {0});
  ASSERT_EQ(ctrl.health_state(0), HealthState::Quarantined);
  // A hard failure of the quarantined server resets its gray history —
  // the topology event owns the blade now.
  ctrl.on_failure(t += 0.1, 0);
  EXPECT_EQ(ctrl.health_state(0), HealthState::Healthy);
  ctrl.on_recovery(t += 0.1, 0);
  EXPECT_EQ(ctrl.health_state(0), HealthState::Healthy);
  EXPECT_GT(ctrl.routing_fractions()[0], 0.0);  // rejoins the split clean
}

TEST(ControllerQuarantine, WholeFleetQuarantinedKeepsServing) {
  const auto cluster = gray_cluster();
  runtime::Controller ctrl(cluster, gray_cfg(cluster));
  double t = 0.0;
  feed(ctrl, t, 80, {}, {0, 1, 2});
  // Every server gray-failed: the availability contract prefers degraded
  // service over a dark fleet, so the published split must stay a
  // distribution (not all zeros).
  const auto fractions = ctrl.routing_fractions();
  double sum = 0.0;
  for (double f : fractions) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --- policy layer: quarantine-aware routing tiers -------------------------

StateView make_view(const std::vector<ServerState>& fleet) {
  return StateView{&fleet,
                   [](const void* ctx, std::size_t i) {
                     return (*static_cast<const std::vector<ServerState>*>(ctx))[i];
                   },
                   fleet.size()};
}

TEST(PolicyQuarantine, ScanRoutesAroundQuarantinedMin) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::Jsq;
  policy::DispatchPolicy p(cfg, 3);
  // Server 0 has the shortest queue but is quarantined: JSQ must pick
  // the best routable server instead.
  std::vector<ServerState> fleet{{1.0, 4, 4, 0, true}, {1.0, 4, 4, 3, false}, {1.0, 4, 4, 5, false}};
  EXPECT_EQ(p.route(make_view(fleet)), 1u);
  EXPECT_GE(p.counters().quarantine_skips, 1u);
}

TEST(PolicyQuarantine, QuarantinedBeatsDarkWhenNothingRoutable) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::Jsq;
  policy::DispatchPolicy p(cfg, 3);
  // No routable server: one quarantined-but-up, two dark. Degraded
  // service beats parking on a dead queue.
  std::vector<ServerState> fleet{{1.0, 4, 0, 1, false}, {1.0, 4, 4, 9, true}, {1.0, 4, 0, 0, false}};
  EXPECT_EQ(p.route(make_view(fleet)), 1u);
}

TEST(PolicyQuarantine, SampledNeverPicksQuarantinedWeightHog) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::OptSplit;
  cfg.weights = {100.0, 1.0, 1.0};
  policy::DispatchPolicy p(cfg, 3);
  std::vector<ServerState> fleet{{1.0, 4, 4, 0, true}, {1.0, 4, 4, 0, false}, {1.0, 4, 4, 0, false}};
  const StateView view = make_view(fleet);
  for (int k = 0; k < 256; ++k) {
    const std::size_t dest = p.route(view);
    ASSERT_NE(dest, 0u) << "routed to a quarantined server with healthy alternatives";
  }
  EXPECT_GT(p.counters().quarantine_skips, 0u);
}

TEST(PolicyQuarantine, ProbedFallbackPrefersRoutableThenQuarantined) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::JsqD;
  cfg.probe_d = 2;
  policy::DispatchPolicy p(cfg, 2);
  // Both probes (d = n = 2) quarantined or dark.
  std::vector<ServerState> fleet{{1.0, 4, 4, 2, true}, {1.0, 4, 0, 0, false}};
  EXPECT_EQ(p.route(make_view(fleet)), 0u);  // quarantined-up beats dark
  fleet[1].available = 4;                    // server 1 recovers
  EXPECT_EQ(p.route(make_view(fleet)), 1u);  // routable tier wins again
}

TEST(PolicyQuarantine, RoundRobinSkipsQuarantinedInCycle) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::RoundRobin;
  policy::DispatchPolicy p(cfg, 3);
  std::vector<ServerState> fleet{{1.0, 4, 4, 0, false}, {1.0, 4, 4, 0, true}, {1.0, 4, 4, 0, false}};
  const StateView view = make_view(fleet);
  std::vector<std::size_t> picks;
  for (int k = 0; k < 4; ++k) picks.push_back(p.route(view));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 2, 0, 2}));
  EXPECT_GE(p.counters().quarantine_skips, 2u);
}

TEST(PolicyQuarantine, LightTrafficOracleRejectsQuarantinedFleet) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::JsqD;
  cfg.probe_d = 2;
  std::vector<ServerState> fleet{{1.0, 4, 4, 0, false}, {1.0, 4, 4, 0, true}};
  EXPECT_THROW((void)policy::light_traffic_fractions(cfg, fleet), std::invalid_argument);
}

// --- 200-seed gray-chaos battery ------------------------------------------

/// Builds a per-seed gray fault script: 2-4 episodes (slowdown or stall)
/// on random servers, all injected and CLEARED inside [40, 260] so the
/// controller has the whole tail of the horizon to detect, quarantine,
/// probe, and reconverge.
std::vector<ReplayEvent> seeded_gray_events(std::uint64_t seed, std::size_t n) {
  sim::RngStream rng(seed, 991);
  std::vector<ReplayEvent> events;
  const int episodes = 2 + static_cast<int>(rng.uniform() * 3.0);
  double t = 40.0;
  for (int k = 0; k < episodes && t < 220.0; ++k) {
    const auto server = static_cast<std::size_t>(rng.uniform() * static_cast<double>(n));
    const double len = 15.0 + 25.0 * rng.uniform();
    if (rng.uniform() < 0.5) {
      const double factor = 0.1 + 0.2 * rng.uniform();
      events.push_back(
          {.time = t, .kind = ReplayEvent::Kind::Slow, .server = server, .factor = factor});
      events.push_back(
          {.time = t + len, .kind = ReplayEvent::Kind::Slow, .server = server, .factor = 1.0});
    } else {
      events.push_back({.time = t, .kind = ReplayEvent::Kind::Stall, .server = server});
      events.push_back({.time = t + len, .kind = ReplayEvent::Kind::Unstall, .server = server});
    }
    t += len + 5.0 + 20.0 * rng.uniform();
  }
  return events;
}

TEST(GrayBattery, ReconvergesToHealthyOptimumAfterFaultsClear) {
  const auto cluster = model::make_cluster({2, 2, 2}, {2.0, 1.0, 1.0}, 1.0, 0.15);
  constexpr double kHorizon = 600.0;
  constexpr int kSeeds = 200;

  runtime::ControllerConfig cfg;
  // Long estimator memory: the offered rate is constant, so a smooth
  // lambda estimate makes "reconverged to the healthy optimum" sharp —
  // the degraded and clean runs re-solve at different instants, and a
  // twitchy EWMA would differ by sampling noise alone.
  cfg.half_life = kHorizon / 15.0;
  cfg.health.enabled = true;

  int violations = 0;
  std::string first_violation;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    ReplayTrace trace;
    trace.horizon = kHorizon;
    trace.seed = static_cast<std::uint64_t>(seed);
    trace.events.push_back({.time = 0.0,
                            .kind = ReplayEvent::Kind::Rate,
                            .rate = 0.5 * cluster.max_generic_rate()});
    ReplayTrace gray = trace;
    for (const auto& e : seeded_gray_events(trace.seed, cluster.size())) gray.events.push_back(e);

    const auto degraded = runtime::replay(cluster, cfg, gray);
    const auto clean = runtime::replay(cluster, cfg, trace);

    // Fencing invariant: a quarantined server never receives a route
    // while a healthy alternative exists.
    if (degraded.routes_to_quarantined != 0) {
      ++violations;
      if (first_violation.empty()) {
        first_violation = "seed " + std::to_string(seed) + ": " +
                          std::to_string(degraded.routes_to_quarantined) +
                          " routes to quarantined servers";
      }
      continue;
    }
    // Reconvergence: every fault cleared by t = 260, so by the horizon
    // the published split must be back at the healthy optimum (same
    // trace, same estimator inputs as the clean run).
    ASSERT_EQ(degraded.final_fractions.size(), clean.final_fractions.size());
    for (std::size_t i = 0; i < clean.final_fractions.size(); ++i) {
      if (std::abs(degraded.final_fractions[i] - clean.final_fractions[i]) > 0.05) {
        ++violations;
        if (first_violation.empty()) {
          first_violation = "seed " + std::to_string(seed) + ": server " + std::to_string(i) +
                            " fraction " + std::to_string(degraded.final_fractions[i]) +
                            " vs healthy " + std::to_string(clean.final_fractions[i]);
        }
        break;
      }
    }
  }

  if (violations > 0) {
    // Ship the decision trail with the failure: CI uploads
    // RECORDER_*.jsonl artifacts on failed runs.
    const obs::Dump dump = obs::recorder().dump("gray_battery");
    obs::write_dump_file(dump, "RECORDER_gray_battery.jsonl");
  }
  EXPECT_EQ(violations, 0) << first_violation
                           << " (recorder dump: RECORDER_gray_battery.jsonl)";
}

}  // namespace
