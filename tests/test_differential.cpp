// The differential conformance suite: every solver path the repo has
// (paper bisection, projected gradient, discrete DP, closed forms) must
// agree -- through the tests/support oracle comparators -- on a corpus
// of ~100 seeded instances per discipline spanning the edge regimes
// where solvers actually break: near-saturation, single-blade,
// very wide servers, and extreme speed/size heterogeneity. On top of
// the cross-solver checks, the metamorphic invariances (permutation,
// joint speed scaling, server splitting) and a statistical simulation
// oracle close the loop against the event-driven simulator.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "support/comparators.hpp"
#include "support/generators.hpp"
#include "support/metamorphic.hpp"
#include "support/oracles.hpp"

namespace {

using namespace blade;
using namespace blade::testsupport;
using queue::Discipline;

constexpr std::uint64_t kSeedsPerRegime = 17;  // x 6 regimes = 102 per discipline

class DifferentialCorpus
    : public ::testing::TestWithParam<std::tuple<Regime, Discipline>> {
 protected:
  Regime regime() const { return std::get<0>(GetParam()); }
  Discipline discipline() const { return std::get<1>(GetParam()); }
};

// Bisection vs KKT vs gradient on every instance; the DP oracle (the
// slow one) on a per-regime prefix of seeds. Near saturation the DP's
// uniform grid cannot resolve the exploding T' curve, so the DP oracle
// sits that regime out (the KKT certificate still applies there).
TEST_P(DifferentialCorpus, SolverPathsAgree) {
  for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
    const Instance inst = make_instance(regime(), seed, discipline());
    OracleOptions opts;
    if (seed <= 4 && regime() != Regime::NearSaturation) opts.dp_units = 600;
    if (regime() == Regime::SizeExtremes || regime() == Regime::LargeServers) {
      // Wide servers make the optimum flat in rate space: two solvers can
      // disagree on rates by ~0.5% while agreeing on T' to 1e-6.
      opts.rate_agreement = Tolerance{1e-2, 1e-5};
    }
    if (regime() == Regime::NearSaturation) {
      // rho -> 1: T' is steep, first-order agreement degrades ~1/(1-rho).
      opts.gradient_agreement = Tolerance{2e-3, 1e-9};
      opts.rate_agreement = Tolerance{5e-3, 1e-4};
      opts.kkt_tolerance = 1e-2;
    }
    const auto rep = cross_check(inst.cluster, inst.discipline, inst.lambda, opts);
    EXPECT_TRUE(rep.ok()) << inst.name << " (" << queue::to_string(inst.discipline)
                          << "):\n" << rep.summary();
  }
}

// The fast-path oracle: the production solver (derivative Newton inner
// solves, Brent outer refinement, warm-started brackets) against the
// frozen pure-bisection transcription of the original algorithm, on the
// same corpus. Both converge phi and every rate to 1e-12, so their T'
// must agree essentially to convergence tolerance; rates get the same
// flat-optimum slack the cross-solver checks use.
TEST_P(DifferentialCorpus, FastPathMatchesSeedBisection) {
  for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
    const Instance inst = make_instance(regime(), seed, discipline());
    Tolerance rate_tol{1e-6, 1e-9};
    if (regime() == Regime::SizeExtremes || regime() == Regime::LargeServers) {
      rate_tol = Tolerance{1e-2, 1e-5};  // flat optima: rates underdetermined
    }
    if (regime() == Regime::NearSaturation) rate_tol = Tolerance{5e-3, 1e-4};
    const auto fast =
        opt::LoadDistributionOptimizer(inst.cluster, inst.discipline).optimize(inst.lambda);
    const auto ref = seed_bisection_distribution(inst.cluster, inst.discipline, inst.lambda);
    CompareReport rep;
    rep.check("fast vs seed T'", fast.response_time, ref.response_time,
              Tolerance{1e-9, 1e-12});
    const auto rates = compare_vectors("fast vs seed rates", fast.rates, ref.rates, rate_tol);
    rep.mismatches.insert(rep.mismatches.end(), rates.mismatches.begin(),
                          rates.mismatches.end());
    EXPECT_TRUE(rep.ok()) << inst.name << " (" << queue::to_string(inst.discipline)
                          << "):\n" << rep.summary();
  }
}

TEST_P(DifferentialCorpus, PermutationInvariance) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst = make_instance(regime(), seed, discipline());
    const auto perm = rotation(inst.cluster.size(), 1 + seed % (inst.cluster.size() - 1));
    const auto rep = check_permutation_invariance(inst.cluster, inst.discipline, inst.lambda,
                                                  perm, Tolerance{1e-6, 1e-7});
    EXPECT_TRUE(report_ok(rep)) << inst.name;
  }
}

TEST_P(DifferentialCorpus, ScalingInvariance) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst = make_instance(regime(), seed, discipline());
    for (double k : {3.7, 0.25}) {
      const auto rep = check_scaling_invariance(inst.cluster, inst.discipline, inst.lambda, k,
                                                Tolerance{1e-6, 1e-7});
      EXPECT_TRUE(report_ok(rep)) << inst.name << " k=" << k;
    }
  }
}

TEST_P(DifferentialCorpus, SplitServerNeverHelps) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst = make_instance(regime(), seed, discipline());
    // Split the first splittable (even-size) server, if any.
    for (std::size_t i = 0; i < inst.cluster.size(); ++i) {
      const auto& s = inst.cluster.server(i);
      if (s.size() >= 2 && s.size() % 2 == 0) {
        const auto rep = check_split_monotonicity(inst.cluster, inst.discipline, inst.lambda, i,
                                                  Tolerance{1e-6, 1e-7});
        EXPECT_TRUE(report_ok(rep)) << inst.name << " split server " << i;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, DifferentialCorpus,
    ::testing::Combine(::testing::ValuesIn(all_regimes()),
                       ::testing::Values(Discipline::Fcfs, Discipline::SpecialPriority)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             queue::to_string(std::get<1>(info.param));
    });

// The statistical closure: simulate the optimizer's split and require the
// analytic optimum to sit inside the replication CI (widened to 3 sigma
// with a 3% relative floor). Two moderate-load instances per discipline
// keep this affordable in sanitizer runs.
class SimOracle : public ::testing::TestWithParam<Discipline> {};

TEST_P(SimOracle, SimulatorConfirmsOptimizer) {
  for (std::uint64_t seed : {3u, 11u}) {
    const Instance inst = make_instance(Regime::Random, seed, GetParam());
    const auto runs = run_solver_paths(inst.cluster, inst.discipline, inst.lambda);
    const auto& bis = runs.front().dist;
    const auto rep = sim_cross_check(inst.cluster, inst.discipline, bis.rates,
                                     bis.response_time, /*replications=*/3,
                                     /*horizon=*/12000.0, /*warmup=*/1500.0);
    EXPECT_TRUE(report_ok(rep)) << inst.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Disciplines, SimOracle,
                         ::testing::Values(Discipline::Fcfs, Discipline::SpecialPriority),
                         [](const auto& info) { return queue::to_string(info.param); });

}  // namespace
