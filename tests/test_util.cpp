// util module: running stats, confidence intervals, tables, CSV, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace blade::util;

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.std_error(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0 + i * 0.1;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableForShiftedData) {
  // Naive sum-of-squares would lose all precision here.
  RunningStats rs;
  const double base = 1e9;
  for (double x : {base + 4.0, base + 7.0, base + 13.0, base + 16.0}) rs.add(x);
  EXPECT_NEAR(rs.mean(), base + 10.0, 1e-3);
  EXPECT_NEAR(rs.variance(), 30.0, 1e-6);
}

TEST(ConfidenceInterval, BasicGeometry) {
  ConfidenceInterval ci{10.0, 2.0, 0.95};
  EXPECT_DOUBLE_EQ(ci.lo(), 8.0);
  EXPECT_DOUBLE_EQ(ci.hi(), 12.0);
  EXPECT_TRUE(ci.contains(9.0));
  EXPECT_FALSE(ci.contains(12.5));
  EXPECT_DOUBLE_EQ(ci.relative_width(), 0.2);
}

TEST(ConfidenceInterval, TQuantilesDecreaseWithDf) {
  EXPECT_GT(t_quantile(1, 0.95), t_quantile(5, 0.95));
  EXPECT_GT(t_quantile(5, 0.95), t_quantile(30, 0.95));
  EXPECT_GT(t_quantile(30, 0.95), t_quantile(1000, 0.95));
  EXPECT_NEAR(t_quantile(1000000, 0.95), 1.96, 1e-9);
}

TEST(ConfidenceInterval, FromSamples) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ci = t_confidence_interval(xs, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  // stddev = sqrt(2.5), se = sqrt(0.5), t_{4,0.975} = 2.776.
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(0.5), 1e-9);
  EXPECT_THROW((void)t_confidence_interval(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(SpanStats, MeanStdDevCv) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 4.0);
  EXPECT_NEAR(stddev_of(xs), 2.0, 1e-12);
  EXPECT_NEAR(coefficient_of_variation(xs), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(SpanStats, MeanAbsDeviationOrdersHeterogeneity) {
  // The fig12 size groups, most to least heterogeneous.
  const std::vector<double> g1{1, 2, 2, 8, 14, 14, 15};
  const std::vector<double> g3{4, 6, 6, 8, 10, 10, 12};
  const std::vector<double> g5{8, 8, 8, 8, 8, 8, 8};
  EXPECT_GT(mean_abs_deviation(g1), mean_abs_deviation(g3));
  EXPECT_GT(mean_abs_deviation(g3), mean_abs_deviation(g5));
  EXPECT_DOUBLE_EQ(mean_abs_deviation(g5), 0.0);
}

TEST(Table, RendersAlignedCells) {
  Table t({"i", "value"});
  t.add_row({"1", "0.5"});
  t.add_row({"10", "12.25"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| value |"), std::string::npos);
  EXPECT_NE(out.find("|  1 |"), std::string::npos);
  EXPECT_NE(out.find("| 10 |"), std::string::npos);
}

TEST(Table, RejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
  EXPECT_THROW(t.set_align(5, Align::Left), std::out_of_range);
}

TEST(Fixed, FormatsSevenDigitsLikeThePaper) {
  EXPECT_EQ(fixed(0.8964703), "0.8964703");
  EXPECT_EQ(fixed(1.5, 1), "1.5");
}

TEST(Csv, RoundTripsColumns) {
  Csv csv;
  const auto a = csv.add_column("lambda");
  const auto b = csv.add_column("T");
  csv.push(a, 1.0);
  csv.push(b, 2.5);
  csv.push_row({2.0, 3.5});
  const std::string out = csv.render(1);
  EXPECT_EQ(out, "lambda,T\n1.0,2.5\n2.0,3.5\n");
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, DetectsRaggedColumns) {
  Csv csv;
  const auto a = csv.add_column("x");
  csv.add_column("y");
  csv.push(a, 1.0);
  EXPECT_THROW((void)csv.render(), std::logic_error);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Strings, JoinSplitTrim) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  const auto parts = split("x,,y", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(trim("  hi\n"), "hi");
  EXPECT_TRUE(starts_with("figure04", "fig"));
  EXPECT_FALSE(starts_with("fig", "figure"));
}

TEST(Strings, VectorToString) {
  EXPECT_EQ(to_string(std::vector<double>{1.0, 2.5}, 1), "[1.0, 2.5]");
}

}  // namespace
