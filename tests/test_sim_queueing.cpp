// The simulated server against exact queueing theory: M/M/1, M/M/m,
// utilization, Theorem 2's priority formula, and the preemptive extension.
// These are the tests the paper itself has no analogue of -- an
// independent stochastic check of every analytic formula we rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "model/cluster.hpp"
#include "queueing/blade_queue.hpp"
#include "queueing/mmm.hpp"
#include "sim/simulation.hpp"
#include "util/stats.hpp"

namespace {

using namespace blade;
using sim::SchedulingMode;
using sim::SimConfig;
using sim::simulate_split;

SimConfig quick_config(std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.horizon = 60000.0;
  cfg.warmup = 4000.0;
  cfg.seed = seed;
  return cfg;
}

TEST(SimQueue, MM1ResponseTimeMatchesTheory) {
  // Single server, single blade, no special tasks: T = xbar/(1-rho).
  // M/M/1 response times are heavily autocorrelated, so average a few
  // independent seeds before comparing.
  const model::Cluster c({model::BladeServer(1, 1.0, 0.0)}, 1.0);
  const double lambda = 0.7;
  blade::util::RunningStats means;
  std::uint64_t samples = 0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto res = simulate_split(c, {lambda}, SchedulingMode::Fcfs, quick_config(seed));
    means.add(res.generic_mean_response);
    samples += res.generic_samples;
  }
  const double expected = queue::MMmQueue(1, 1.0).mean_response_time(lambda);
  EXPECT_GT(samples, 80000u);
  EXPECT_NEAR(means.mean(), expected, 0.05 * expected);
}

TEST(SimQueue, MMmResponseTimeMatchesTheory) {
  const model::Cluster c({model::BladeServer(4, 1.0, 0.0)}, 1.0);
  const double lambda = 3.2;  // rho = 0.8
  const auto res = simulate_split(c, {lambda}, SchedulingMode::Fcfs, quick_config(3));
  const double expected = queue::MMmQueue(4, 1.0).mean_response_time(lambda);
  EXPECT_NEAR(res.generic_mean_response, expected, 0.06 * expected);
}

TEST(SimQueue, UtilizationMatchesRho) {
  const model::Cluster c({model::BladeServer(3, 2.0, 1.0)}, 1.0);
  const double lambda = 2.0;
  const auto res = simulate_split(c, {lambda}, SchedulingMode::Fcfs, quick_config(5));
  const double rho = (lambda + 1.0) * 0.5 / 3.0;
  ASSERT_EQ(res.servers.size(), 1u);
  EXPECT_NEAR(res.servers[0].utilization, rho, 0.02);
}

TEST(SimQueue, MixedFcfsMatchesMergedStreamTheory) {
  // Generic + special under FCFS behave as one M/M/m at the merged rate.
  const model::Cluster c({model::BladeServer(4, 1.0, 1.5)}, 1.0);
  const double lambda1 = 1.5;
  const auto res = simulate_split(c, {lambda1}, SchedulingMode::Fcfs, quick_config(7));
  const auto q = c.server(0).queue(1.0, queue::Discipline::Fcfs);
  const double expected = q.generic_response_time(lambda1);
  EXPECT_NEAR(res.generic_mean_response, expected, 0.06 * expected);
  EXPECT_NEAR(res.special_mean_response, expected, 0.06 * expected);
}

TEST(SimQueue, NonPreemptivePriorityMatchesTheorem2) {
  // The key formula of Section 4, checked stochastically.
  const model::Cluster c({model::BladeServer(4, 1.0, 1.5)}, 1.0);
  const double lambda1 = 1.5;
  const auto res =
      simulate_split(c, {lambda1}, SchedulingMode::NonPreemptivePriority, quick_config(11));
  const auto q = c.server(0).queue(1.0, queue::Discipline::SpecialPriority);
  const double expected_generic = q.generic_response_time(lambda1);
  const double expected_special = q.special_response_time(lambda1);
  EXPECT_NEAR(res.generic_mean_response, expected_generic, 0.07 * expected_generic);
  EXPECT_NEAR(res.special_mean_response, expected_special, 0.07 * expected_special);
  // Ordering: special < fcfs-merged < generic.
  EXPECT_LT(res.special_mean_response, res.generic_mean_response);
}

TEST(SimQueue, PriorityDoesNotChangeUtilization) {
  const model::Cluster c({model::BladeServer(4, 1.0, 1.5)}, 1.0);
  const double lambda1 = 1.5;
  const auto fcfs = simulate_split(c, {lambda1}, SchedulingMode::Fcfs, quick_config(13));
  const auto prio =
      simulate_split(c, {lambda1}, SchedulingMode::NonPreemptivePriority, quick_config(13));
  EXPECT_NEAR(fcfs.servers[0].utilization, prio.servers[0].utilization, 0.02);
}

TEST(SimQueue, PreemptiveResumeBeatsNonPreemptiveForSpecial) {
  const model::Cluster c({model::BladeServer(2, 1.0, 0.8)}, 1.0);
  const double lambda1 = 0.7;
  const auto np =
      simulate_split(c, {lambda1}, SchedulingMode::NonPreemptivePriority, quick_config(17));
  const auto pr = simulate_split(c, {lambda1}, SchedulingMode::PreemptiveResume, quick_config(17));
  EXPECT_GT(pr.servers[0].preemptions, 0u);
  EXPECT_EQ(np.servers[0].preemptions, 0u);
  EXPECT_LT(pr.special_mean_response, np.special_mean_response + 0.05);
  // Generic tasks pay for the preemptions.
  EXPECT_GT(pr.generic_mean_response, np.generic_mean_response - 0.05);
}

TEST(SimQueue, ZeroGenericRateStillServesSpecial) {
  const model::Cluster c({model::BladeServer(2, 1.0, 1.0)}, 1.0);
  const auto res = simulate_split(c, {0.0}, SchedulingMode::Fcfs, quick_config(19));
  EXPECT_EQ(res.generic_samples, 0u);
  EXPECT_GT(res.special_samples, 10000u);
}

TEST(SimQueue, DeterministicForFixedSeed) {
  const model::Cluster c({model::BladeServer(2, 1.0, 0.5)}, 1.0);
  SimConfig cfg = quick_config(23);
  cfg.horizon = 5000.0;
  const auto a = simulate_split(c, {1.0}, SchedulingMode::Fcfs, cfg);
  const auto b = simulate_split(c, {1.0}, SchedulingMode::Fcfs, cfg);
  EXPECT_DOUBLE_EQ(a.generic_mean_response, b.generic_mean_response);
  EXPECT_EQ(a.events, b.events);
}

TEST(SimQueue, SeedsProduceIndependentEstimates) {
  const model::Cluster c({model::BladeServer(2, 1.0, 0.5)}, 1.0);
  SimConfig cfg = quick_config(29);
  cfg.horizon = 5000.0;
  const auto a = simulate_split(c, {1.0}, SchedulingMode::Fcfs, cfg);
  cfg.seed = 30;
  const auto b = simulate_split(c, {1.0}, SchedulingMode::Fcfs, cfg);
  EXPECT_NE(a.generic_mean_response, b.generic_mean_response);
}

TEST(SimQueue, ValidatesInput) {
  const model::Cluster c({model::BladeServer(1, 1.0, 0.0)}, 1.0);
  EXPECT_THROW((void)simulate_split(c, {1.0, 2.0}, SchedulingMode::Fcfs, quick_config()),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_split(c, {-1.0}, SchedulingMode::Fcfs, quick_config()),
               std::invalid_argument);
}

}  // namespace
