// numerics module: special functions, root finders, differentiation,
// convexity checkers.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/convexity.hpp"
#include "numerics/differentiation.hpp"
#include "numerics/roots.hpp"
#include "numerics/special.hpp"

namespace {

using namespace blade::num;

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-12);
}

TEST(LogFactorial, LargeValuesMatchLgamma) {
  for (unsigned k : {25u, 100u, 1000u}) {
    EXPECT_NEAR(log_factorial(k), std::lgamma(k + 1.0), 1e-9);
  }
}

TEST(PoissonPmf, SumsToOne) {
  const double a = 6.5;
  double total = 0.0;
  for (unsigned k = 0; k <= 200; ++k) total += poisson_pmf(k, a);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PoissonPmf, ZeroMean) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
}

TEST(PoissonCdf, MatchesDirectSummation) {
  const double a = 12.3;
  double acc = 0.0;
  for (unsigned K = 0; K <= 40; ++K) {
    acc += poisson_pmf(K, a);
    EXPECT_NEAR(poisson_cdf(K, a), acc, 1e-12) << "K=" << K;
  }
}

TEST(PoissonCdf, SurvivesHugeLoad) {
  // e^{-a} underflows (a > 745); the log-domain fallback must kick in.
  const double a = 900.0;
  const double at_mean = poisson_cdf(900, a);
  EXPECT_GT(at_mean, 0.4);
  EXPECT_LT(at_mean, 0.6);
  EXPECT_NEAR(poisson_cdf(2000, a), 1.0, 1e-9);
}

TEST(KahanSum, RecoversSmallTermsNextToLarge) {
  KahanSum s;
  s.add(1e16);
  for (int i = 0; i < 10000; ++i) s.add(1.0);
  s.add(-1e16);
  EXPECT_NEAR(s.value(), 10000.0, 1e-6);
}

TEST(KahanSum, SpanHelper) {
  const std::vector<double> xs{0.1, 0.2, 0.3};
  EXPECT_NEAR(ksum(xs), 0.6, 1e-15);
}

TEST(RelDiff, ScalesSensibly) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_diff(100.0, 101.0), 1.0 / 101.0, 1e-12);
  EXPECT_NEAR(rel_diff(0.0, 0.5), 0.5, 1e-12);  // floors the scale at 1
}

// ---------------------------------------------------------------- roots

TEST(SolveIncreasing, FindsRootOfShiftedCube) {
  const auto res = solve_increasing([](double x) { return x * x * x; }, 27.0, 0.0, std::nullopt);
  EXPECT_NEAR(res.x, 3.0, 1e-9);
  EXPECT_FALSE(res.clamped_at_upper);
}

TEST(SolveIncreasing, ReturnsLowerWhenAlreadyAboveTarget) {
  const auto res = solve_increasing([](double x) { return x + 10.0; }, 5.0, 0.0, std::nullopt);
  EXPECT_DOUBLE_EQ(res.x, 0.0);
}

TEST(SolveIncreasing, ClampsAtSupremumWhenUnreachable) {
  // f diverges at 1 but the target is huge; with sup given, we must clamp.
  const auto f = [](double x) { return 1.0 / (1.0 - x); };
  const auto res = solve_increasing(f, 1e30, 0.0, 1.0);
  EXPECT_TRUE(res.clamped_at_upper);
  EXPECT_LT(res.x, 1.0);
  EXPECT_GT(res.x, 0.999);
}

TEST(SolveIncreasing, HandlesBarrierFunctions) {
  // The optimizer's marginals diverge at saturation; target below the pole.
  const auto f = [](double x) { return 1.0 / (1.0 - x); };
  const auto res = solve_increasing(f, 4.0, 0.0, 1.0);
  EXPECT_NEAR(res.x, 0.75, 1e-9);
}

TEST(Bisect, FindsSqrtTwo) {
  const auto res = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, RequiresBracket) {
  EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0), RootFindingError);
}

TEST(Brent, MatchesBisectionFaster) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto rb = bisect(f, 0.0, 1.0);
  const auto rr = brent(f, 0.0, 1.0);
  EXPECT_NEAR(rr.x, rb.x, 1e-9);
  EXPECT_LT(rr.iterations, rb.iterations);
}

TEST(Brent, HandlesRootAtEndpoint) {
  const auto res = brent([](double x) { return x; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(res.x, 0.0);
}

TEST(NewtonSafeguarded, QuadraticConvergence) {
  const auto fdf = [](double x) {
    return std::pair{x * x - 2.0, 2.0 * x};
  };
  const auto res = newton_safeguarded(fdf, 0.0, 2.0);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-9);
  EXPECT_LT(res.iterations, 12);
}

TEST(NewtonSafeguarded, SurvivesZeroDerivative) {
  // f'(0) = 0 forces the bisection fallback on the first step.
  const auto fdf = [](double x) {
    return std::pair{x * x * x - 8.0, 3.0 * x * x};
  };
  const auto res = newton_safeguarded(fdf, 0.0, 5.0);
  EXPECT_NEAR(res.x, 2.0, 1e-8);
}

TEST(RootResultParity, BrentAndNewtonFillEveryDiagnosticField) {
  // brent/newton never expand or clamp a bracket, but their RootResult
  // must still report that explicitly (the perf benches and exporters
  // read the same fields for every solver).
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto rb = brent(f, 0.0, 1.0);
  EXPECT_EQ(rb.expansions, 0);
  EXPECT_FALSE(rb.clamped_at_upper);
  EXPECT_GT(rb.iterations, 0);
  EXPECT_NEAR(rb.f, f(rb.x), 1e-12);

  const auto fdf = [](double x) {
    return std::pair{x * x - 2.0, 2.0 * x};
  };
  const auto rn = newton_safeguarded(fdf, 0.0, 2.0);
  EXPECT_EQ(rn.expansions, 0);
  EXPECT_FALSE(rn.clamped_at_upper);
  EXPECT_GT(rn.iterations, 0);
  EXPECT_NEAR(rn.f, fdf(rn.x).first, 1e-9);
}

// ------------------------------------------------- differentiation

TEST(Differentiation, CentralDifferenceOnPolynomial) {
  const auto f = [](double x) { return 3.0 * x * x + 2.0 * x + 1.0; };
  EXPECT_NEAR(central_difference(f, 2.0), 14.0, 1e-6);
}

TEST(Differentiation, RichardsonBeatsPlainCentral) {
  const auto f = [](double x) { return std::exp(x); };
  const double x = 1.0;
  const double exact = std::exp(1.0);
  const double h = 1e-3;
  const double plain_err = std::abs(central_difference(f, x, h) - exact);
  const double rich_err = std::abs(richardson_derivative(f, x, h) - exact);
  EXPECT_LT(rich_err, plain_err);
  EXPECT_NEAR(richardson_derivative(f, x), exact, 1e-8);
}

TEST(Differentiation, SecondDerivative) {
  const auto f = [](double x) { return x * x * x; };
  EXPECT_NEAR(second_derivative(f, 2.0), 12.0, 1e-4);
}

// ------------------------------------------------------ convexity

TEST(Convexity, DetectsConvexAndNonConvex) {
  EXPECT_TRUE(check_convex([](double x) { return x * x; }, -1.0, 1.0).holds);
  EXPECT_TRUE(check_convex([](double x) { return std::exp(x); }, -1.0, 2.0).holds);
  const auto rep = check_convex([](double x) { return std::sin(x); }, 0.0, 3.0);
  EXPECT_FALSE(rep.holds);
  EXPECT_LT(rep.worst_violation, 0.0);
}

TEST(Monotonicity, DetectsIncreasingAndNot) {
  EXPECT_TRUE(check_increasing([](double x) { return x * x * x; }, -2.0, 2.0).holds);
  EXPECT_FALSE(check_increasing([](double x) { return -x; }, 0.0, 1.0).holds);
}

TEST(ShapeChecks, ValidateArguments) {
  EXPECT_THROW((void)check_convex([](double x) { return x; }, 0.0, 1.0, 2),
               std::invalid_argument);
  EXPECT_THROW((void)check_increasing([](double x) { return x; }, 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
