// Shard-vs-flat differential battery: the sharded hierarchical solver
// (core/sharded.hpp) must reproduce the flat paper solver's optimum —
// same global multiplier fixed point, so agreement is an exact
// mathematical claim, not an approximation contract. The corpus reuses
// the tests/support edge-regime generators (~100 instances per
// discipline) and certifies every sharded solution against the KKT
// oracle directly. On top of the corpus, the metamorphic layer pins the
// cell structure itself: one cell with coalescing off IS the flat call
// sequence (bitwise), n cells of size one is too, cell counts and
// server permutations don't move the optimum, prune-k sweeps have
// monotone T' with measured loss within the reported duality-gap bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "core/kkt.hpp"
#include "core/optimizer.hpp"
#include "core/sharded.hpp"
#include "model/cluster.hpp"
#include "numerics/special.hpp"
#include "support/generators.hpp"
#include "support/metamorphic.hpp"

namespace {

using namespace blade;
using namespace blade::testsupport;
using queue::Discipline;

constexpr std::uint64_t kSeedsPerRegime = 17;  // x 6 regimes = 102 per discipline

opt::ShardOptions cells_opt(std::size_t cells, bool coalesce = true, std::size_t top_k = 0) {
  opt::ShardOptions s;
  s.cells = cells;
  s.coalesce_identical = coalesce;
  s.prune.top_k = top_k;
  return s;
}

/// |a - b| <= abs + rel * max(|a|, |b|), the comparators' tolerance shape.
void expect_close(double a, double b, double rel, double abs, const std::string& what) {
  EXPECT_LE(std::abs(a - b), abs + rel * std::max(std::abs(a), std::abs(b))) << what;
}

/// A catalog fleet: n servers drawn from a handful of SKUs laid out in
/// contiguous blocks — the workload class coalescing is built for.
model::Cluster catalog_cluster(std::size_t n, std::size_t skus) {
  std::vector<unsigned> sizes(n);
  std::vector<double> speeds(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = i * skus / n;
    sizes[i] = static_cast<unsigned>(1 + (s % 5));
    speeds[i] = 0.6 + 0.45 * static_cast<double>(s);
  }
  return model::make_cluster(sizes, speeds, 1.0, 0.2);
}

class ShardedCorpus : public ::testing::TestWithParam<std::tuple<Regime, Discipline>> {
 protected:
  Regime regime() const { return std::get<0>(GetParam()); }
  Discipline discipline() const { return std::get<1>(GetParam()); }
};

// Sharded (multi-cell) vs flat on every corpus instance: T' at 1e-8
// rel, rates with the same flat-optimum slack the cross-solver
// differential suite uses, and a direct KKT certification of the
// sharded assignment (feasibility + stationarity + complementarity).
TEST_P(ShardedCorpus, MatchesFlatOptimumAndKkt) {
  for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
    const Instance inst = make_instance(regime(), seed, discipline());
    const auto flat =
        opt::LoadDistributionOptimizer(inst.cluster, inst.discipline).optimize(inst.lambda);
    const opt::ShardedOptimizer sharded(inst.cluster, inst.discipline, {}, cells_opt(4));
    const auto sol = sharded.optimize(inst.lambda);

    EXPECT_LE(num::rel_diff(sol.dist.response_time, flat.response_time), 1e-8)
        << inst.name << ": sharded T'=" << sol.dist.response_time
        << " flat T'=" << flat.response_time;
    expect_close(sol.dist.total_rate(), inst.lambda, 1e-12, 0.0, inst.name + ": total rate");

    // Wide servers / extreme heterogeneity make the optimum flat in rate
    // space; near saturation first-order agreement degrades ~1/(1-rho).
    double rate_rel = 1e-6;
    double rate_abs = 1e-9;
    if (regime() == Regime::SizeExtremes || regime() == Regime::LargeServers) {
      rate_rel = 1e-2;
      rate_abs = 1e-5;
    }
    if (regime() == Regime::NearSaturation) {
      rate_rel = 5e-3;
      rate_abs = 1e-4;
    }
    ASSERT_EQ(sol.dist.rates.size(), flat.rates.size());
    for (std::size_t i = 0; i < flat.rates.size(); ++i) {
      expect_close(sol.dist.rates[i], flat.rates[i], rate_rel, rate_abs,
                   inst.name + ": rate " + std::to_string(i));
    }

    const double kkt_tol = regime() == Regime::NearSaturation ? 1e-2 : 1e-6;
    const auto kkt =
        opt::verify_kkt(inst.cluster, inst.discipline, inst.lambda, sol.dist.rates, kkt_tol);
    EXPECT_TRUE(kkt.optimal()) << inst.name << ": " << kkt.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, ShardedCorpus,
    ::testing::Combine(::testing::ValuesIn(all_regimes()),
                       ::testing::Values(Discipline::Fcfs, Discipline::SpecialPriority)));

// ---------------------------------------------------------------------------
// Metamorphic battery for the cell layer.

// One cell with coalescing disabled runs the flat solver's exact call
// sequence through the shared numeric core — every reported quantity
// must be bitwise identical, not merely close.
TEST(ShardedMetamorphic, OneCellIsFlatBitwise) {
  for (const Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    for (const Regime r : {Regime::Random, Regime::NearSaturation, Regime::SpeedExtremes}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Instance inst = make_instance(r, seed, d);
        const auto flat =
            opt::LoadDistributionOptimizer(inst.cluster, inst.discipline).optimize(inst.lambda);
        const opt::ShardedOptimizer sharded(inst.cluster, inst.discipline, {},
                                            cells_opt(1, /*coalesce=*/false));
        ASSERT_EQ(sharded.cell_count(), 1u);
        const auto sol = sharded.optimize(inst.lambda);

        EXPECT_EQ(sol.dist.response_time, flat.response_time) << inst.name;
        EXPECT_EQ(sol.dist.phi, flat.phi) << inst.name;
        EXPECT_EQ(sol.dist.outer_iterations, flat.outer_iterations) << inst.name;
        EXPECT_EQ(sol.dist.inner_evaluations, flat.inner_evaluations) << inst.name;
        ASSERT_EQ(sol.dist.rates.size(), flat.rates.size());
        for (std::size_t i = 0; i < flat.rates.size(); ++i) {
          EXPECT_EQ(sol.dist.rates[i], flat.rates[i]) << inst.name << " rate " << i;
          EXPECT_EQ(sol.dist.utilizations[i], flat.utilizations[i]) << inst.name << " rho " << i;
          EXPECT_EQ(sol.dist.response_times[i], flat.response_times[i])
              << inst.name << " T' " << i;
        }
      }
    }
  }
}

// The other degenerate cut: n cells of size one. Per-cell Kahan totals
// of a single term are exact and the outer compensated sum visits cells
// in index order, so F(phi) — and with it every solver decision — is
// again bitwise the flat evaluation.
TEST(ShardedMetamorphic, SingletonCellsAreFlatBitwise) {
  for (const Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Instance inst = make_instance(Regime::Random, seed, d);
      const auto flat =
          opt::LoadDistributionOptimizer(inst.cluster, inst.discipline).optimize(inst.lambda);
      const opt::ShardedOptimizer sharded(inst.cluster, inst.discipline, {},
                                          cells_opt(inst.cluster.size()));
      ASSERT_EQ(sharded.cell_count(), inst.cluster.size());
      const auto sol = sharded.optimize(inst.lambda);

      EXPECT_EQ(sol.dist.response_time, flat.response_time) << inst.name;
      EXPECT_EQ(sol.dist.phi, flat.phi) << inst.name;
      EXPECT_EQ(sol.dist.outer_iterations, flat.outer_iterations) << inst.name;
      ASSERT_EQ(sol.dist.rates.size(), flat.rates.size());
      for (std::size_t i = 0; i < flat.rates.size(); ++i) {
        EXPECT_EQ(sol.dist.rates[i], flat.rates[i]) << inst.name << " rate " << i;
      }
    }
  }
}

// Any cell count solves the same global fixed point; only compensated-
// summation grouping differs, so T' stays pinned far below the corpus
// tolerance.
TEST(ShardedMetamorphic, CellCountInvariance) {
  for (const Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const Instance inst = make_instance(Regime::Random, seed, d);
      const auto flat =
          opt::LoadDistributionOptimizer(inst.cluster, inst.discipline).optimize(inst.lambda);
      for (const std::size_t cells : {std::size_t{2}, std::size_t{3}, std::size_t{5},
                                      std::size_t{8}}) {
        const opt::ShardedOptimizer sharded(inst.cluster, inst.discipline, {},
                                            cells_opt(cells));
        const auto sol = sharded.optimize(inst.lambda);
        EXPECT_LE(num::rel_diff(sol.dist.response_time, flat.response_time), 1e-9)
            << inst.name << " cells=" << cells;
      }
    }
  }
}

// Permuting servers across cell boundaries permutes the rates and
// leaves T' unchanged (the objective is separable; cells are just an
// evaluation grouping).
TEST(ShardedMetamorphic, PermutationAcrossCells) {
  for (const Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const Instance inst = make_instance(Regime::Random, seed, d);
      const std::size_t n = inst.cluster.size();
      const auto base =
          opt::ShardedOptimizer(inst.cluster, inst.discipline, {}, cells_opt(3))
              .optimize(inst.lambda);
      const auto perm = rotation(n, n / 3 + 1);
      const auto permuted_sol =
          opt::ShardedOptimizer(permuted(inst.cluster, perm), inst.discipline, {}, cells_opt(3))
              .optimize(inst.lambda);

      EXPECT_LE(num::rel_diff(permuted_sol.dist.response_time, base.dist.response_time), 1e-9)
          << inst.name;
      for (std::size_t i = 0; i < n; ++i) {
        // permuted server i is original server perm[i]
        expect_close(permuted_sol.dist.rates[i], base.dist.rates[perm[i]], 1e-6, 1e-9,
                     inst.name + ": permuted rate " + std::to_string(i));
      }
    }
  }
}

// Coalescing identical servers into classes is exact: a catalog fleet
// solved with and without coalescing gives the same optimum, while the
// coalesced solve works over far fewer classes than servers.
TEST(ShardedMetamorphic, CoalescingIsExact) {
  const auto cluster = catalog_cluster(96, 8);
  const double lambda = 0.55 * cluster.max_generic_rate();
  for (const Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const opt::ShardedOptimizer on(cluster, d, {}, cells_opt(4, /*coalesce=*/true));
    const opt::ShardedOptimizer off(cluster, d, {}, cells_opt(4, /*coalesce=*/false));
    EXPECT_GT(on.coalesced_servers(), 0u);
    EXPECT_LT(on.server_classes(), cluster.size());
    EXPECT_EQ(off.server_classes(), cluster.size());

    const auto a = on.optimize(lambda);
    const auto b = off.optimize(lambda);
    EXPECT_LE(num::rel_diff(a.dist.response_time, b.dist.response_time), 1e-9);
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      expect_close(a.dist.rates[i], b.dist.rates[i], 1e-6, 1e-9,
                   "coalesce rate " + std::to_string(i));
    }
    // Identical servers must receive identical load under coalescing.
    const auto& sol = a.dist.rates;
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      if (cluster.server(i) == cluster.server(i - 1)) {
        const std::size_t cell = 4 * i / cluster.size();
        if (cell == 4 * (i - 1) / cluster.size()) {
          EXPECT_EQ(sol[i], sol[i - 1]) << "class members diverged at " << i;
        }
      }
    }
  }
}

// Prune-k sweep: larger k keeps a superset of servers (attraction
// ranking is lambda'-independent), so T' is monotone non-increasing in
// k, measured loss stays within the reported duality-gap bound, and an
// unpruned k reports a zero-ish bound. Infeasible k (kept capacity
// below lambda') must fail typed, not numerically.
TEST(ShardedMetamorphic, PruneSweepMonotoneWithinBound) {
  const auto cluster = catalog_cluster(96, 8);
  const double lambda = 0.55 * cluster.max_generic_rate();
  for (const Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto flat = opt::LoadDistributionOptimizer(cluster, d).optimize(lambda);
    double prev = std::numeric_limits<double>::infinity();
    for (const std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                                std::size_t{12}, std::size_t{16}, std::size_t{24}}) {
      const opt::ShardedOptimizer sharded(cluster, d, {}, cells_opt(4, true, k));
      if (lambda >= sharded.kept_capacity()) {
        const auto res = sharded.try_optimize(lambda);
        ASSERT_FALSE(res.has_value()) << "k=" << k;
        EXPECT_EQ(res.error().code, ErrorCode::Infeasible) << "k=" << k;
        continue;
      }
      const auto sol = sharded.optimize(lambda);
      const double loss = sol.dist.response_time - flat.response_time;
      EXPECT_GE(loss, -1e-9 * (1.0 + flat.response_time)) << "k=" << k;
      EXPECT_LE(loss, sol.prune_loss_bound) << "k=" << k;
      EXPECT_LE(sol.dist.response_time, prev + 1e-12 * (1.0 + std::abs(prev))) << "k=" << k;
      prev = sol.dist.response_time;
      if (k >= 24) {  // cell size: nothing pruned
        EXPECT_EQ(sol.pruned_servers, 0u);
        EXPECT_LE(num::rel_diff(sol.dist.response_time, flat.response_time), 1e-8);
      } else {
        EXPECT_GT(sol.pruned_servers, 0u) << "k=" << k;
        // The pruned assignment is exactly feasible and zero on pruned servers.
        expect_close(sol.dist.total_rate(), lambda, 1e-12, 0.0, "pruned total");
      }
    }
  }
}

// Workspace reuse (warm starts) must not move results beyond solver
// tolerance, and the cross-solve seed must be armed after a solve.
TEST(ShardedMetamorphic, WarmStartedWorkspaceMatchesCold) {
  const auto cluster = catalog_cluster(64, 6);
  const double lambda_max = cluster.max_generic_rate();
  const opt::ShardedOptimizer sharded(cluster, Discipline::Fcfs, {}, cells_opt(4));
  opt::ShardedWorkspace ws;
  EXPECT_LT(ws.seed_phi(), 0.0);
  (void)sharded.optimize(0.4 * lambda_max, ws);
  EXPECT_GT(ws.seed_phi(), 0.0);
  const auto warm = sharded.optimize(0.45 * lambda_max, ws);
  const auto cold = sharded.optimize(0.45 * lambda_max);
  EXPECT_LE(num::rel_diff(warm.dist.response_time, cold.dist.response_time), 1e-9);
}

// The error surface mirrors the flat solver's typed taxonomy.
TEST(ShardedMetamorphic, ErrorTaxonomy) {
  const auto cluster = catalog_cluster(32, 4);
  const opt::ShardedOptimizer sharded(cluster, Discipline::Fcfs, {}, cells_opt(4));
  EXPECT_THROW((void)sharded.optimize(0.0), std::invalid_argument);
  EXPECT_THROW((void)sharded.optimize(cluster.max_generic_rate()), std::invalid_argument);
  const auto bad = sharded.try_optimize(-1.0);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, ErrorCode::InvalidArgument);
  const auto sat = sharded.try_optimize(2.0 * cluster.max_generic_rate());
  ASSERT_FALSE(sat.has_value());
  EXPECT_EQ(sat.error().code, ErrorCode::Infeasible);
}

}  // namespace
