// End-to-end reproduction of the paper's Examples 1 and 2 (Tables 1, 2):
// the optimizer must match the published seven-digit values.
#include <gtest/gtest.h>

#include "core/kkt.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"

namespace {

using blade::model::paper_example_cluster;
using blade::model::paper_example_lambda;
using blade::opt::LoadDistributionOptimizer;
using blade::queue::Discipline;

// Published values from Table 1 (no priority).
constexpr double kTable1Rates[7] = {0.6652046, 1.8802882, 2.9973639, 3.9121948,
                                    4.5646028, 4.8769307, 4.6234149};
constexpr double kTable1Rho[7] = {0.5078764, 0.6133814, 0.6568290, 0.6761726,
                                  0.6803836, 0.6694644, 0.6302439};
constexpr double kTable1T = 0.8964703;

// Published values from Table 2 (priority).
constexpr double kTable2Rates[7] = {0.5908113, 1.7714948, 2.8813939, 3.8136848,
                                    4.5164617, 4.9419622, 5.0041912};
constexpr double kTable2Rho[7] = {0.4846285, 0.5952491, 0.6430231, 0.6667005,
                                  0.6763718, 0.6743911, 0.6574422};
constexpr double kTable2T = 0.9209392;

TEST(PaperSetup, ExampleClusterParameters) {
  const auto cluster = paper_example_cluster();
  ASSERT_EQ(cluster.size(), 7u);
  EXPECT_EQ(cluster.total_blades(), 56u);
  // lambda'_max = 0.7 * sum m_i s_i = 0.7 * 67.2 = 47.04.
  EXPECT_NEAR(cluster.max_generic_rate(), 47.04, 1e-10);
  EXPECT_NEAR(paper_example_lambda(), 23.52, 1e-10);
  // Special rates contribute exactly 30% utilization to every server.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_NEAR(cluster.server(i).special_utilization(cluster.rbar()), 0.3, 1e-12);
  }
  // Table column check: lambda''_i as printed.
  const double expected_special[7] = {0.96, 1.8, 2.52, 3.12, 3.6, 3.96, 4.2};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(cluster.server(i).special_rate(), expected_special[i], 1e-10);
  }
}

TEST(PaperExample1, ReproducesTable1) {
  const LoadDistributionOptimizer solver(paper_example_cluster(), Discipline::Fcfs);
  const auto sol = solver.optimize(paper_example_lambda());
  ASSERT_EQ(sol.rates.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(sol.rates[i], kTable1Rates[i], 2e-6) << "server " << i + 1;
    EXPECT_NEAR(sol.utilizations[i], kTable1Rho[i], 1e-6) << "server " << i + 1;
  }
  EXPECT_NEAR(sol.response_time, kTable1T, 1e-6);
  EXPECT_NEAR(sol.total_rate(), paper_example_lambda(), 1e-9);
}

TEST(PaperExample2, ReproducesTable2) {
  const LoadDistributionOptimizer solver(paper_example_cluster(), Discipline::SpecialPriority);
  const auto sol = solver.optimize(paper_example_lambda());
  ASSERT_EQ(sol.rates.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(sol.rates[i], kTable2Rates[i], 2e-6) << "server " << i + 1;
    EXPECT_NEAR(sol.utilizations[i], kTable2Rho[i], 1e-6) << "server " << i + 1;
  }
  EXPECT_NEAR(sol.response_time, kTable2T, 1e-6);
}

TEST(PaperExamples, PriorityCostsGenericTasksMore) {
  const auto cluster = paper_example_cluster();
  const auto fcfs = LoadDistributionOptimizer(cluster, Discipline::Fcfs)
                        .optimize(paper_example_lambda());
  const auto prio = LoadDistributionOptimizer(cluster, Discipline::SpecialPriority)
                        .optimize(paper_example_lambda());
  EXPECT_GT(prio.response_time, fcfs.response_time);
}

TEST(PaperExamples, SolutionsSatisfyKkt) {
  const auto cluster = paper_example_cluster();
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto sol = LoadDistributionOptimizer(cluster, d).optimize(paper_example_lambda());
    const auto rep = blade::opt::verify_kkt(cluster, d, paper_example_lambda(), sol.rates, 1e-5);
    EXPECT_TRUE(rep.optimal()) << rep.detail;
    EXPECT_EQ(rep.active.size(), 7u);
  }
}

}  // namespace
