// Projected-gradient alternative solver: the simplex projection and
// agreement with the bisection optimizer on the paper instance.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/gradient_optimizer.hpp"
#include "core/optimizer.hpp"
#include "model/paper_configs.hpp"

namespace {

using namespace blade;
using opt::gradient_optimize;
using opt::project_capped_simplex;
using queue::Discipline;

TEST(Projection, AlreadyFeasiblePointIsFixed) {
  const std::vector<double> v{0.3, 0.3, 0.4};
  const std::vector<double> ub{1.0, 1.0, 1.0};
  const auto p = project_capped_simplex(v, ub, 1.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p[i], v[i], 1e-10);
}

TEST(Projection, UniformExcessRemovedEqually) {
  const std::vector<double> v{1.0, 1.0, 1.0};
  const std::vector<double> ub{2.0, 2.0, 2.0};
  const auto p = project_capped_simplex(v, ub, 1.5);
  for (double x : p) EXPECT_NEAR(x, 0.5, 1e-9);
}

TEST(Projection, RespectsUpperBounds) {
  const std::vector<double> v{10.0, 0.0, 0.0};
  const std::vector<double> ub{1.0, 5.0, 5.0};
  const auto p = project_capped_simplex(v, ub, 3.0);
  EXPECT_NEAR(p[0], 1.0, 1e-9);
  EXPECT_NEAR(p[1] + p[2], 2.0, 1e-9);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_LE(p[i], ub[i] + 1e-12);
}

TEST(Projection, ClampsNegativesToZero) {
  const std::vector<double> v{-5.0, 2.0, 3.0};
  const std::vector<double> ub{10.0, 10.0, 10.0};
  const auto p = project_capped_simplex(v, ub, 4.0);
  EXPECT_NEAR(p[0], 0.0, 1e-9);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 4.0, 1e-9);
}

TEST(Projection, SumExactAfterResidualFix) {
  const std::vector<double> v{0.123, 4.567, 2.891, 0.001};
  const std::vector<double> ub{3.0, 3.0, 3.0, 3.0};
  const auto p = project_capped_simplex(v, ub, 6.0);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 6.0, 1e-12);
}

TEST(Projection, RejectsImpossibleTarget) {
  EXPECT_THROW((void)project_capped_simplex({1.0}, {0.5}, 2.0), std::invalid_argument);
  EXPECT_THROW((void)project_capped_simplex({1.0, 2.0}, {0.5}, 0.4), std::invalid_argument);
  EXPECT_THROW((void)project_capped_simplex({1.0}, {-0.5}, 0.1), std::invalid_argument);
}

TEST(Projection, IsIdempotent) {
  const std::vector<double> v{5.0, -1.0, 2.0};
  const std::vector<double> ub{2.0, 2.0, 2.0};
  const auto p1 = project_capped_simplex(v, ub, 3.5);
  const auto p2 = project_capped_simplex(p1, ub, 3.5);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(p1[i], p2[i], 1e-9);
}

TEST(GradientOptimizer, MatchesBisectionOnPaperCluster) {
  const auto c = model::paper_example_cluster();
  const double lambda = model::paper_example_lambda();
  for (Discipline d : {Discipline::Fcfs, Discipline::SpecialPriority}) {
    const auto gd = gradient_optimize(c, d, lambda);
    const auto bis = opt::LoadDistributionOptimizer(c, d).optimize(lambda);
    EXPECT_TRUE(gd.converged);
    EXPECT_NEAR(gd.distribution.response_time, bis.response_time, 1e-6);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(gd.distribution.rates[i], bis.rates[i], 5e-3) << "server " << i;
    }
  }
}

TEST(GradientOptimizer, FeasibleThroughoutLoadRange) {
  const auto c = model::paper_example_cluster();
  for (double frac : {0.2, 0.6, 0.9}) {
    const double lambda = frac * c.max_generic_rate();
    const auto gd = gradient_optimize(c, Discipline::Fcfs, lambda);
    double total = 0.0;
    for (std::size_t i = 0; i < gd.distribution.rates.size(); ++i) {
      EXPECT_GE(gd.distribution.rates[i], 0.0);
      EXPECT_LT(gd.distribution.utilizations[i], 1.0);
      total += gd.distribution.rates[i];
    }
    EXPECT_NEAR(total, lambda, 1e-6 * lambda);
  }
}

TEST(GradientOptimizer, IterationCapRespected) {
  const auto c = model::paper_example_cluster();
  opt::GradientOptions opts;
  opts.max_iterations = 3;
  const auto gd = gradient_optimize(c, Discipline::Fcfs, 20.0, opts);
  EXPECT_LE(gd.iterations, 3);
}

}  // namespace
